package exp

import (
	"fmt"
	"io"

	"sttsim/internal/noc"
	"sttsim/internal/sim"
	"sttsim/internal/stats"
	"sttsim/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 3: distribution of accesses after a write, and buffered two-hop
// requests per router.
// ---------------------------------------------------------------------------

// Fig3Entry is one benchmark's access-gap characterization.
type Fig3Entry struct {
	Profile workload.Profile
	// BinPct are the Figure 3 bins (<16, 16-33, 33-66, 66-99, 99-132,
	// 132-165, 165+) as percentages of all bank accesses after a write.
	BinPct []float64
	// TwoHopReqs is the mean number of buffered demand requests two hops
	// from their destination per occupied cache-layer router (the "#Req"
	// inset).
	TwoHopReqs float64
	// Failed is the failure cell when the run did not complete.
	Failed string
}

// Figure3 characterizes the access gaps on the STT-RAM baseline.
func Figure3(r *Runner) ([]Fig3Entry, error) {
	for _, prof := range r.Options().benchmarks() {
		r.Prefetch(SchemeConfig(sim.SchemeSTT64TSB, prof))
	}
	var out []Fig3Entry
	for _, prof := range r.Options().benchmarks() {
		res, err := r.RunScheme(sim.SchemeSTT64TSB, prof)
		if err != nil {
			out = append(out, Fig3Entry{Profile: prof, Failed: failedCell(err)})
			continue
		}
		out = append(out, Fig3Entry{
			Profile:    prof,
			BinPct:     res.GapHist.Percents(),
			TwoHopReqs: res.HopReqs[2],
		})
	}
	return out, nil
}

// PrintFigure3 renders the histogram rows. Failed runs render as failure
// cells and are excluded from the average.
func PrintFigure3(w io.Writer, entries []Fig3Entry) {
	h := stats.NewGapHistogram()
	header := []string{"bench"}
	for i := 0; i < h.Bins(); i++ {
		header = append(header, h.Label(i)+"%")
	}
	header = append(header, "#Req(2hop)")
	t := &table{header: header}
	var avg []float64
	n := 0
	for _, e := range entries {
		row := []string{e.Profile.Name}
		if e.Failed != "" {
			for i := 0; i < h.Bins(); i++ {
				row = append(row, e.Failed)
			}
			row = append(row, e.Failed)
			t.add(row...)
			continue
		}
		n++
		for i, p := range e.BinPct {
			row = append(row, f2(p))
			if len(avg) <= i {
				avg = append(avg, 0)
			}
			avg[i] += p
		}
		row = append(row, f2(e.TwoHopReqs))
		t.add(row...)
	}
	if n > 0 {
		row := []string{"AVG"}
		for _, v := range avg {
			row = append(row, f2(v/float64(n)))
		}
		row = append(row, "")
		t.add(row...)
	}
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 6: system throughput of the six schemes normalized to SRAM-64TSB.
// ---------------------------------------------------------------------------

// Fig6Entry is one benchmark's normalized performance across schemes.
type Fig6Entry struct {
	Profile workload.Profile
	// Normalized[s] is PerfMetric(scheme s) / PerfMetric(SRAM-64TSB).
	Normalized [sim.NumSchemes]float64
	// Failed[s] is the failure cell for scheme s when its run (or the
	// SRAM-64TSB baseline) did not complete.
	Failed [sim.NumSchemes]string
}

// Fig6Result groups entries by suite with averages.
type Fig6Result struct {
	Entries []Fig6Entry
}

// SuiteAverage returns the mean normalized performance per scheme over one
// suite (or over everything when suite is -1). Failed cells are excluded
// per scheme.
func (f *Fig6Result) SuiteAverage(suite workload.Suite, all bool) [sim.NumSchemes]float64 {
	var sum [sim.NumSchemes]float64
	var n [sim.NumSchemes]int
	for _, e := range f.Entries {
		if !all && e.Profile.Suite != suite {
			continue
		}
		for s := range e.Normalized {
			if e.Failed[s] != "" {
				continue
			}
			sum[s] += e.Normalized[s]
			n[s]++
		}
	}
	for s := range sum {
		if n[s] > 0 {
			sum[s] /= float64(n[s])
		}
	}
	return sum
}

// Figure6 runs every benchmark under all six schemes. Individual run
// failures become failure cells; the campaign continues.
func Figure6(r *Runner) (*Fig6Result, error) {
	profs := r.Options().benchmarks()
	for _, prof := range profs {
		for _, s := range sim.AllSchemes() {
			r.Prefetch(SchemeConfig(s, prof))
		}
	}
	out := &Fig6Result{}
	for _, prof := range profs {
		e := Fig6Entry{Profile: prof}
		base, err := r.RunScheme(sim.SchemeSRAM64TSB, prof)
		if err != nil {
			// Without the baseline nothing normalizes: mark the whole row.
			for s := range e.Failed {
				e.Failed[s] = failedCell(err)
			}
			out.Entries = append(out.Entries, e)
			continue
		}
		baseline := PerfMetric(prof, base)
		for _, s := range sim.AllSchemes() {
			res, err := r.RunScheme(s, prof)
			if err != nil {
				e.Failed[s] = failedCell(err)
				continue
			}
			if baseline > 0 {
				e.Normalized[s] = PerfMetric(prof, res) / baseline
			}
		}
		out.Entries = append(out.Entries, e)
	}
	return out, nil
}

// PrintFigure6 renders per-suite blocks in the paper's layout.
func PrintFigure6(w io.Writer, f *Fig6Result) {
	for _, suite := range []workload.Suite{workload.SuiteServer, workload.SuitePARSEC, workload.SuiteSPEC} {
		metric := "IPC (slowest thread)"
		if suite == workload.SuiteSPEC {
			metric = "Instruction throughput"
		}
		fmt.Fprintf(w, "-- %s: %s normalized to SRAM-64TSB --\n", suite, metric)
		t := &table{header: append([]string{"bench"}, schemeHeaders()...)}
		found := false
		for _, e := range f.Entries {
			if e.Profile.Suite != suite {
				continue
			}
			found = true
			row := []string{e.Profile.Name}
			for _, s := range sim.AllSchemes() {
				if e.Failed[s] != "" {
					row = append(row, e.Failed[s])
					continue
				}
				row = append(row, f3(e.Normalized[s]))
			}
			t.add(row...)
		}
		if !found {
			continue
		}
		avg := f.SuiteAverage(suite, false)
		row := []string{"Avg."}
		for _, s := range sim.AllSchemes() {
			row = append(row, f3(avg[s]))
		}
		t.add(row...)
		t.write(w)
		fmt.Fprintln(w)
	}
}

func schemeHeaders() []string {
	var out []string
	for _, s := range sim.AllSchemes() {
		out = append(out, s.String())
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 7: packet latency split into network and bank-queuing components.
// ---------------------------------------------------------------------------

// Fig7Apps are the benchmarks the paper breaks down.
var Fig7Apps = []string{"sap", "sjbb", "sclust", "lbm", "hmmer"}

// Fig7Entry is one benchmark's latency breakdown per scheme.
type Fig7Entry struct {
	Bench string
	// NetLat and QueueLat are mean cycles per scheme.
	NetLat   [sim.NumSchemes]float64
	QueueLat [sim.NumSchemes]float64
	// Failed[s] is the failure cell for scheme s.
	Failed [sim.NumSchemes]string
}

// Figure7 measures the latency split.
func Figure7(r *Runner) ([]Fig7Entry, error) {
	for _, name := range Fig7Apps {
		for _, s := range sim.AllSchemes() {
			r.Prefetch(SchemeConfig(s, workload.MustByName(name)))
		}
	}
	var out []Fig7Entry
	for _, name := range Fig7Apps {
		prof := workload.MustByName(name)
		e := Fig7Entry{Bench: name}
		for _, s := range sim.AllSchemes() {
			res, err := r.RunScheme(s, prof)
			if err != nil {
				e.Failed[s] = failedCell(err)
				continue
			}
			e.NetLat[s] = res.NetTransit
			e.QueueLat[s] = res.BankQueue
		}
		out = append(out, e)
	}
	return out, nil
}

// PrintFigure7 renders the breakdown, normalized to SRAM-64TSB as in the
// paper (the SRAM row shows raw cycles).
func PrintFigure7(w io.Writer, entries []Fig7Entry) {
	t := &table{header: append([]string{"bench", "component"}, schemeHeaders()...)}
	for _, e := range entries {
		netRow := []string{e.Bench, "net lat"}
		queRow := []string{"", "que lat"}
		baseFailed := e.Failed[sim.SchemeSRAM64TSB]
		for _, s := range sim.AllSchemes() {
			if e.Failed[s] != "" {
				netRow = append(netRow, e.Failed[s])
				queRow = append(queRow, e.Failed[s])
				continue
			}
			if s == sim.SchemeSRAM64TSB {
				netRow = append(netRow, f2(e.NetLat[s])+"cyc")
				queRow = append(queRow, f2(e.QueueLat[s])+"cyc")
				continue
			}
			if baseFailed != "" {
				// Nothing to normalize against.
				netRow = append(netRow, baseFailed)
				queRow = append(queRow, baseFailed)
				continue
			}
			nl, ql := 0.0, 0.0
			if e.NetLat[sim.SchemeSRAM64TSB] > 0 {
				nl = e.NetLat[s] / e.NetLat[sim.SchemeSRAM64TSB]
			}
			if e.QueueLat[sim.SchemeSRAM64TSB] > 0 {
				ql = e.QueueLat[s] / e.QueueLat[sim.SchemeSRAM64TSB]
			} else {
				ql = e.QueueLat[s]
			}
			netRow = append(netRow, f2(nl)+"x")
			queRow = append(queRow, f2(ql)+"x")
		}
		t.add(netRow...)
		t.add(queRow...)
	}
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 8: un-core energy normalized to SRAM-64TSB.
// ---------------------------------------------------------------------------

// Fig8Schemes are the schemes Figure 8 plots (the paper omits plain 4TSB).
var Fig8Schemes = []sim.Scheme{
	sim.SchemeSRAM64TSB, sim.SchemeSTT64TSB,
	sim.SchemeSTT4TSBSS, sim.SchemeSTT4TSBRCA, sim.SchemeSTT4TSBWB,
}

// Fig8Entry is one benchmark's normalized un-core energy.
type Fig8Entry struct {
	Profile    workload.Profile
	Normalized map[sim.Scheme]float64
	// Failed[s] is the failure cell for scheme s.
	Failed map[sim.Scheme]string
}

// Figure8 measures un-core energy per scheme.
func Figure8(r *Runner) ([]Fig8Entry, error) {
	for _, prof := range r.Options().benchmarks() {
		for _, s := range Fig8Schemes {
			r.Prefetch(SchemeConfig(s, prof))
		}
	}
	var out []Fig8Entry
	for _, prof := range r.Options().benchmarks() {
		e := Fig8Entry{Profile: prof,
			Normalized: make(map[sim.Scheme]float64),
			Failed:     make(map[sim.Scheme]string)}
		base, err := r.RunScheme(sim.SchemeSRAM64TSB, prof)
		if err != nil {
			for _, s := range Fig8Schemes {
				e.Failed[s] = failedCell(err)
			}
			out = append(out, e)
			continue
		}
		for _, s := range Fig8Schemes {
			res, err := r.RunScheme(s, prof)
			if err != nil {
				e.Failed[s] = failedCell(err)
				continue
			}
			if base.Energy.UncoreJ() > 0 {
				e.Normalized[s] = res.Energy.UncoreJ() / base.Energy.UncoreJ()
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// PrintFigure8 renders normalized energies with the all-benchmark average.
// Failed cells are excluded from the per-scheme average.
func PrintFigure8(w io.Writer, entries []Fig8Entry) {
	header := []string{"bench"}
	for _, s := range Fig8Schemes {
		header = append(header, s.String())
	}
	t := &table{header: header}
	avg := make(map[sim.Scheme]float64)
	n := make(map[sim.Scheme]int)
	for _, e := range entries {
		row := []string{e.Profile.Name}
		for _, s := range Fig8Schemes {
			if cell := e.Failed[s]; cell != "" {
				row = append(row, cell)
				continue
			}
			row = append(row, f3(e.Normalized[s]))
			avg[s] += e.Normalized[s]
			n[s]++
		}
		t.add(row...)
	}
	if len(entries) > 0 {
		row := []string{"Avg."}
		for _, s := range Fig8Schemes {
			if n[s] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(avg[s]/float64(n[s])))
		}
		t.add(row...)
	}
	t.write(w)
}

// ---------------------------------------------------------------------------
// Figure 9 + 10: multi-programmed case studies.
// ---------------------------------------------------------------------------

// Fig9Case is one workload mix's weighted speedup and instruction throughput
// per scheme, normalized to SRAM-64TSB.
type Fig9Case struct {
	Name string
	WS   [sim.NumSchemes]float64
	IT   [sim.NumSchemes]float64
	// Failed[s] is the failure cell for scheme s (set when any of the
	// case's mixes or alone-references failed under that scheme).
	Failed [sim.NumSchemes]string
}

// caseMetrics computes WS and IT for one mix under one scheme, using
// homogeneous alone-runs (same scheme) as the Equation 2 reference.
func (r *Runner) caseMetrics(a workload.Assignment, s sim.Scheme) (ws, it float64, res *sim.Result, err error) {
	res, err = r.Run(sim.Config{Scheme: s, Assignment: a})
	if err != nil {
		return 0, 0, nil, err
	}
	alone := make([]float64, len(res.IPC))
	for i := range res.IPC {
		alone[i], err = r.AloneIPC(s, a.Profiles[i])
		if err != nil {
			return 0, 0, nil, err
		}
	}
	return stats.WeightedSpeedup(res.IPC, alone), res.InstructionThroughput, res, nil
}

// prefetchCase queues a mix's runs and its alone-references.
func (r *Runner) prefetchCase(a workload.Assignment, s sim.Scheme) {
	r.Prefetch(sim.Config{Scheme: s, Assignment: a})
	for _, prof := range a.Profiles {
		r.Prefetch(SchemeConfig(s, prof))
	}
}

// Figure9 runs Case-1, Case-2 and the 32-mix aggregate (Case-3). A failure
// in any run of a (case, scheme) pair marks that cell failed; the other
// schemes and cases still report.
func Figure9(r *Runner) ([]Fig9Case, error) {
	mixCount := 32
	if r.Options().Quick {
		mixCount = 4
	}
	cases := []struct {
		name  string
		mixes []workload.Assignment
	}{
		{"Case-1", []workload.Assignment{workload.Case1()}},
		{"Case-2", []workload.Assignment{workload.Case2()}},
		{"Case-3(aggregate)", numberMixes(workload.Case3(r.Options().Seed + 7)[:mixCount])},
	}
	for _, c := range cases {
		for _, s := range sim.AllSchemes() {
			for _, mix := range c.mixes {
				r.prefetchCase(mix, s)
			}
		}
	}
	var out []Fig9Case
	for _, c := range cases {
		fc := Fig9Case{Name: c.name}
		var baseWS, baseIT float64
		baseErr := ""
		for _, s := range sim.AllSchemes() {
			var wsSum, itSum float64
			failed := ""
			for _, mix := range c.mixes {
				ws, it, _, err := r.caseMetrics(mix, s)
				if err != nil {
					failed = failedCell(err)
					break
				}
				wsSum += ws
				itSum += it
			}
			if failed != "" {
				fc.Failed[s] = failed
				if s == sim.SchemeSRAM64TSB {
					baseErr = failed
				}
				continue
			}
			wsSum /= float64(len(c.mixes))
			itSum /= float64(len(c.mixes))
			if s == sim.SchemeSRAM64TSB {
				baseWS, baseIT = wsSum, itSum
			}
			if baseErr != "" {
				fc.Failed[s] = baseErr
				continue
			}
			if baseWS > 0 {
				fc.WS[s] = wsSum / baseWS
			}
			if baseIT > 0 {
				fc.IT[s] = itSum / baseIT
			}
		}
		out = append(out, fc)
	}
	return out, nil
}

// numberMixes gives each mix a unique name so run memoization never
// conflates two random mixes that happen to share a label.
func numberMixes(mixes []workload.Assignment) []workload.Assignment {
	for i := range mixes {
		mixes[i].Name = fmt.Sprintf("%s-%d", mixes[i].Name, i)
	}
	return mixes
}

// PrintFigure9 renders WS/IT rows per case.
func PrintFigure9(w io.Writer, cases []Fig9Case) {
	t := &table{header: append([]string{"case", "metric"}, schemeHeaders()...)}
	for _, c := range cases {
		ws := []string{c.Name, "WS"}
		it := []string{"", "IT"}
		for _, s := range sim.AllSchemes() {
			if c.Failed[s] != "" {
				ws = append(ws, c.Failed[s])
				it = append(it, c.Failed[s])
				continue
			}
			ws = append(ws, f3(c.WS[s]))
			it = append(it, f3(c.IT[s]))
		}
		t.add(ws...)
		t.add(it...)
	}
	t.write(w)
}

// Fig10Entry is one application's maximum slowdown in Case-2 (Equation 3).
type Fig10Entry struct {
	Bench    string
	STT64TSB float64
	WBScheme float64
	// Failed holds per-column failure cells ([0]: STT-64TSB, [1]: WB).
	Failed [2]string
}

// Figure10 measures per-application fairness in the Case-2 mix.
func Figure10(r *Runner) ([]Fig10Entry, error) {
	mix := workload.Case2()
	schemes := []sim.Scheme{sim.SchemeSTT64TSB, sim.SchemeSTT4TSBWB}
	for _, s := range schemes {
		r.prefetchCase(mix, s)
	}
	slow := make(map[string][2]float64)
	var colFailed [2]string
	for si, s := range schemes {
		res, err := r.Run(sim.Config{Scheme: s, Assignment: mix})
		if err != nil {
			colFailed[si] = failedCell(err)
			continue
		}
		for i, ipc := range res.IPC {
			prof := mix.Profiles[i]
			alone, err := r.AloneIPC(s, prof)
			if err != nil {
				colFailed[si] = failedCell(err)
				break
			}
			if ipc <= 0 {
				continue
			}
			sd := alone / ipc
			cur := slow[prof.Name]
			if sd > cur[si] {
				cur[si] = sd
				slow[prof.Name] = cur
			}
		}
	}
	var out []Fig10Entry
	for _, name := range []string{"lbm", "hmmer", "bzip2", "libqntm"} {
		v := slow[name]
		out = append(out, Fig10Entry{Bench: name, STT64TSB: v[0], WBScheme: v[1], Failed: colFailed})
	}
	return out, nil
}

// PrintFigure10 renders the fairness comparison.
func PrintFigure10(w io.Writer, entries []Fig10Entry) {
	t := &table{header: []string{"bench", "MaxSlowdown STT-RAM-64TSB", "MaxSlowdown STT-RAM-4TSB-WB"}}
	for _, e := range entries {
		c0, c1 := f2(e.STT64TSB), f2(e.WBScheme)
		if e.Failed[0] != "" {
			c0 = e.Failed[0]
		}
		if e.Failed[1] != "" {
			c1 = e.Failed[1]
		}
		t.add(e.Bench, c0, c1)
	}
	t.write(w)
}

var _ = noc.NumNodes // keep noc linked for future instrumentation
