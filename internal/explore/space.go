// Package explore is the design-space exploration engine: it sweeps named
// technology profiles, network topologies, and scheme/geometry knobs over the
// campaign execution engine, scores every evaluated point on uncore latency,
// uncore energy, and die area, and maintains the Pareto-optimal frontier of
// the swept space. The paper's evaluation walks a handful of hand-picked
// configurations; this package turns that walk into a reproducible search:
// deterministic enumeration, seeded sampling, successive-halving budget
// allocation, checkpoint/resume through the campaign journal, and
// machine-readable frontier artifacts (pareto.jsonl, CSV, ranked summary).
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sttsim/internal/mem"
	"sttsim/internal/noc"
	"sttsim/internal/sim"
	api "sttsim/pkg/sttsim"
)

// Axis is one sweep dimension: a named, ordered list of values and the rule
// for binding a value into a sim.Config (and, when the axis is expressible on
// the wire, into a service JobSpec for remote evaluation).
type Axis struct {
	Name   string
	Values []string

	apply func(*sim.Config, string) error
	spec  func(*api.JobSpec, string) error // nil: local-only axis
}

// TechAxis sweeps registered technology profiles. With no arguments it
// covers every registered profile.
func TechAxis(names ...string) (Axis, error) {
	if len(names) == 0 {
		names = mem.ProfileNames()
	}
	for _, n := range names {
		if _, ok := mem.LookupProfile(n); !ok {
			return Axis{}, fmt.Errorf("explore: unknown tech profile %q (registered: %s)",
				n, strings.Join(mem.ProfileNames(), ", "))
		}
	}
	return Axis{
		Name:   "tech",
		Values: names,
		apply: func(c *sim.Config, v string) error {
			c.TechProfile = v
			c.CustomTech = nil
			return nil
		},
		spec: func(s *api.JobSpec, v string) error {
			s.TechProfile = v
			return nil
		},
	}, nil
}

// TopoAxis sweeps network shapes given as "XxYxL" strings (e.g. "8x8x2").
func TopoAxis(shapes ...string) (Axis, error) {
	if len(shapes) == 0 {
		return Axis{}, fmt.Errorf("explore: topology axis needs at least one shape")
	}
	canon := make([]string, len(shapes))
	for i, s := range shapes {
		t, err := noc.ParseTopology(s)
		if err != nil {
			return Axis{}, err
		}
		canon[i] = t.String()
	}
	return Axis{
		Name:   "topo",
		Values: canon,
		apply: func(c *sim.Config, v string) error {
			t, err := noc.ParseTopology(v)
			if err != nil {
				return err
			}
			c.MeshX, c.MeshY, c.Layers = t.MeshX, t.MeshY, t.Layers
			return nil
		},
		spec: func(s *api.JobSpec, v string) error {
			t, err := noc.ParseTopology(v)
			if err != nil {
				return err
			}
			s.MeshX, s.MeshY, s.Layers = t.MeshX, t.MeshY, t.Layers
			return nil
		},
	}, nil
}

// schemesByName accepts the CLI spellings used across the drivers.
var schemesByName = map[string]sim.Scheme{
	"sram": sim.SchemeSRAM64TSB, "stt64": sim.SchemeSTT64TSB,
	"stt4": sim.SchemeSTT4TSB, "ss": sim.SchemeSTT4TSBSS,
	"rca": sim.SchemeSTT4TSBRCA, "wb": sim.SchemeSTT4TSBWB,
}

// SchemeAxis sweeps design schemes by their CLI names
// (sram|stt64|stt4|ss|rca|wb).
func SchemeAxis(names ...string) (Axis, error) {
	if len(names) == 0 {
		return Axis{}, fmt.Errorf("explore: scheme axis needs at least one scheme")
	}
	for _, n := range names {
		if _, ok := schemesByName[n]; !ok {
			return Axis{}, fmt.Errorf("explore: unknown scheme %q (want sram|stt64|stt4|ss|rca|wb)", n)
		}
	}
	return Axis{
		Name:   "scheme",
		Values: names,
		apply: func(c *sim.Config, v string) error {
			c.Scheme = schemesByName[v]
			return nil
		},
		spec: func(s *api.JobSpec, v string) error {
			s.Scheme = v
			return nil
		},
	}, nil
}

// RegionsAxis sweeps the region count (4, 8, or 16).
func RegionsAxis(counts ...int) (Axis, error) {
	return intAxis("regions", counts,
		func(c *sim.Config, n int) { c.Regions = n },
		func(s *api.JobSpec, n int) { s.Regions = n })
}

// HopsAxis sweeps the parent-child re-ordering distance.
func HopsAxis(counts ...int) (Axis, error) {
	return intAxis("hops", counts,
		func(c *sim.Config, n int) { c.Hops = n },
		func(s *api.JobSpec, n int) { s.Hops = n })
}

// WriteBufferAxis sweeps the per-bank write-buffer depth (0 disables).
func WriteBufferAxis(entries ...int) (Axis, error) {
	return intAxis("wbuf", entries,
		func(c *sim.Config, n int) { c.WriteBufferEntries = n },
		func(s *api.JobSpec, n int) { s.WriteBufferEntries = n })
}

func intAxis(name string, vals []int, set func(*sim.Config, int), setSpec func(*api.JobSpec, int)) (Axis, error) {
	if len(vals) == 0 {
		return Axis{}, fmt.Errorf("explore: %s axis needs at least one value", name)
	}
	strs := make([]string, len(vals))
	for i, v := range vals {
		strs[i] = strconv.Itoa(v)
	}
	return Axis{
		Name:   name,
		Values: strs,
		apply: func(c *sim.Config, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("explore: %s axis value %q: %w", name, v, err)
			}
			set(c, n)
			return nil
		},
		spec: func(s *api.JobSpec, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			setSpec(s, n)
			return nil
		},
	}, nil
}

// Point is one coordinate of the space: a value per axis, in axis order.
type Point struct {
	Values []string
	ID     string // canonical "axis=value,..." rendering
}

// Space is a parameter space over a base configuration: the cartesian product
// of its axes, minus the points the simulator's own validation rejects.
type Space struct {
	// Base carries everything the axes do not touch: workload, cycles, seed.
	Base sim.Config
	Axes []Axis
}

// NewSpace validates the axes (non-empty, unique names) over a base config.
func NewSpace(base sim.Config, axes ...Axis) (*Space, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("explore: a space needs at least one axis")
	}
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Name == "" || len(a.Values) == 0 || a.apply == nil {
			return nil, fmt.Errorf("explore: malformed axis %q", a.Name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("explore: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		vseen := map[string]bool{}
		for _, v := range a.Values {
			if vseen[v] {
				return nil, fmt.Errorf("explore: axis %q repeats value %q", a.Name, v)
			}
			vseen[v] = true
		}
	}
	return &Space{Base: base, Axes: axes}, nil
}

// Size returns the raw cartesian size, before constraint pruning.
func (s *Space) Size() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// pointID renders the canonical identity of a value vector.
func (s *Space) pointID(vals []string) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = s.Axes[i].Name + "=" + v
	}
	return strings.Join(parts, ",")
}

// Config binds a point into a full runnable configuration and validates it.
func (s *Space) Config(p Point) (sim.Config, error) {
	if len(p.Values) != len(s.Axes) {
		return sim.Config{}, fmt.Errorf("explore: point %q has %d values for %d axes", p.ID, len(p.Values), len(s.Axes))
	}
	cfg := s.Base
	for i, a := range s.Axes {
		if err := a.apply(&cfg, p.Values[i]); err != nil {
			return sim.Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// Spec binds a point into a service JobSpec over a base spec — the remote
// twin of Config. It fails on axes that are not expressible on the wire.
func (s *Space) Spec(base api.JobSpec, p Point) (api.JobSpec, error) {
	spec := base
	for i, a := range s.Axes {
		if a.spec == nil {
			return api.JobSpec{}, fmt.Errorf("explore: axis %q cannot be evaluated remotely", a.Name)
		}
		if err := a.spec(&spec, p.Values[i]); err != nil {
			return api.JobSpec{}, err
		}
	}
	return spec, nil
}

// Points enumerates every valid point in deterministic lexicographic axis
// order. Points whose bound configuration fails validation (e.g. a region
// count that does not tile a swept mesh) are pruned; the second return is
// how many the constraints dropped.
func (s *Space) Points() ([]Point, int) {
	idx := make([]int, len(s.Axes))
	var pts []Point
	pruned := 0
	for {
		vals := make([]string, len(s.Axes))
		for i, a := range s.Axes {
			vals[i] = a.Values[idx[i]]
		}
		p := Point{Values: vals, ID: s.pointID(vals)}
		if _, err := s.Config(p); err == nil {
			pts = append(pts, p)
		} else {
			pruned++
		}
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return pts, pruned
		}
	}
}

// SortPoints orders points canonically by ID (in place) — the tie-break used
// everywhere ordering must not depend on evaluation timing.
func SortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].ID < pts[j].ID })
}
