package explore

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"sttsim/internal/campaign"
	"sttsim/internal/sim"
	"sttsim/internal/workload"
)

// smallSpace is a real three-axis space kept tiny enough for unit tests:
// 2 tech profiles x 2 topologies x 2 write-buffer depths on short runs.
func smallSpace(t *testing.T, measure uint64) *Space {
	t.Helper()
	tech, err := TechAxis("sttram", "sttram-rr10")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := TopoAxis("4x4x2", "4x4x3")
	if err != nil {
		t.Fatal(err)
	}
	wbuf, err := WriteBufferAxis(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Config{
		Scheme:        sim.SchemeSTT4TSBWB,
		Assignment:    workload.Case1(),
		Regions:       4,
		WarmupCycles:  200,
		MeasureCycles: measure,
		Seed:          7,
	}
	space, err := NewSpace(base, tech, topo, wbuf)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func runExplorer(t *testing.T, x *Explorer) *Report {
	t.Helper()
	rep, err := x.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestExplorerGridDeterministicAcrossParallelism: the same seed and space
// produce byte-identical pareto.jsonl whether the engine runs serial or wide.
func TestExplorerGridDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation sweep")
	}
	render := func(jobs int) ([]byte, *Report) {
		rep := runExplorer(t, &Explorer{
			Space:    smallSpace(t, 3000),
			Strategy: Grid{},
			Policy:   campaign.Policy{Jobs: jobs},
		})
		var buf bytes.Buffer
		if err := rep.WritePareto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep
	}
	serial, repSerial := render(1)
	wide, repWide := render(8)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("pareto.jsonl differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s--- jobs=8\n%s", serial, wide)
	}
	if len(repSerial.Evaluations) != 8 || len(repWide.Evaluations) != 8 {
		t.Fatalf("grid evaluated %d/%d points, want 8", len(repSerial.Evaluations), len(repWide.Evaluations))
	}
	if len(repSerial.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
}

// TestExplorerDeterministicAcrossIntraRunParallelism: the intra-run worker
// count (sim.SetParallelism, the CLIs' -par flag) is an execution knob, not a
// model parameter — the same space must render byte-identical pareto.jsonl at
// any setting, including on non-default topologies.
func TestExplorerDeterministicAcrossIntraRunParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation sweep")
	}
	render := func(par int) []byte {
		sim.SetParallelism(par)
		defer sim.SetParallelism(1)
		rep := runExplorer(t, &Explorer{
			Space:    smallSpace(t, 1500),
			Strategy: Grid{},
			Policy:   campaign.Policy{Jobs: 1},
		})
		var buf bytes.Buffer
		if err := rep.WritePareto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); !bytes.Equal(ref, got) {
			t.Fatalf("pareto.jsonl differs between -par 1 and -par %d:\n--- par=1\n%s--- par=%d\n%s",
				par, ref, par, got)
		}
	}
}

// TestExplorerFrontierProperty: on a real sweep, no frontier member is
// dominated by any full-budget evaluation.
func TestExplorerFrontierProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rep := runExplorer(t, &Explorer{
		Space:    smallSpace(t, 3000),
		Strategy: Grid{},
		Policy:   campaign.Policy{Jobs: 4},
	})
	if len(rep.Frontier) == 0 || len(rep.Evaluations) != 8 {
		t.Fatalf("got %d frontier members over %d evaluations", len(rep.Frontier), len(rep.Evaluations))
	}
	for _, m := range rep.Frontier {
		for _, e := range rep.Evaluations {
			if e.ID == m.ID {
				continue
			}
			if Dominates(e.Objectives, m.Objectives) {
				t.Fatalf("frontier member %s dominated by evaluated %s", m.ID, e.ID)
			}
		}
	}
	// Objectives must be physically sane.
	for _, e := range rep.Evaluations {
		if e.LatencyCycles <= 0 || e.EnergyJ <= 0 || e.AreaMM2 <= 0 {
			t.Fatalf("evaluation %s has non-positive objectives: %+v", e.ID, e.Objectives)
		}
	}
}

// TestExplorerResumeReplaysJournal: a second exploration over the same space
// with -resume replays every verdict from the journal and executes nothing.
func TestExplorerResumeReplaysJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	journal := filepath.Join(t.TempDir(), "explore.journal")
	space := smallSpace(t, 2000)
	first := runExplorer(t, &Explorer{
		Space: space, Strategy: Grid{}, Policy: campaign.Policy{Jobs: 4},
		JournalPath: journal,
	})
	if first.Engine.Executed == 0 {
		t.Fatal("first pass executed nothing")
	}
	second := runExplorer(t, &Explorer{
		Space: smallSpace(t, 2000), Strategy: Grid{}, Policy: campaign.Policy{Jobs: 4},
		JournalPath: journal, Resume: true,
	})
	if second.Engine.Executed != 0 {
		t.Fatalf("resume re-executed %d run(s), want 0", second.Engine.Executed)
	}
	if second.Engine.Replayed == 0 {
		t.Fatal("resume replayed nothing from the journal")
	}
	var a, b bytes.Buffer
	if err := first.WritePareto(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WritePareto(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("resumed frontier differs from original:\n--- first\n%s--- resumed\n%s", a.String(), b.String())
	}
}

// TestExplorerHalvingCheaperThanGrid pins the acceptance criterion: on the
// same space, successive halving simulates measurably fewer total cycles than
// the full grid while still producing a full-budget frontier.
func TestExplorerHalvingCheaperThanGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("two simulation sweeps")
	}
	grid := runExplorer(t, &Explorer{
		Space:    smallSpace(t, 4000),
		Strategy: Grid{},
		Policy:   campaign.Policy{Jobs: 4},
	})
	sh := runExplorer(t, &Explorer{
		Space:    smallSpace(t, 4000),
		Strategy: SuccessiveHalving{Eta: 2, MinCycles: 1000},
		Policy:   campaign.Policy{Jobs: 4},
	})
	if sh.TotalSimCycles >= grid.TotalSimCycles {
		t.Fatalf("halving simulated %d cycles, grid %d — halving must be cheaper",
			sh.TotalSimCycles, grid.TotalSimCycles)
	}
	if sh.LowBudgetEvals == 0 {
		t.Fatal("halving never ran a low-budget scout")
	}
	for _, e := range sh.Evaluations {
		if e.Cycles != 4000 {
			t.Fatalf("frontier-feeding evaluation %s ran at %d cycles, want the full 4000", e.ID, e.Cycles)
		}
	}
	// Halving's frontier members must also be grid-undominated: the finalists
	// it promotes are real full-budget runs of the same configs.
	for _, m := range sh.Frontier {
		for _, e := range grid.Evaluations {
			if e.ID == m.ID {
				continue
			}
			if Dominates(e.Objectives, m.Objectives) {
				// Allowed in principle (halving may discard the true optimum
				// early), but with this synthetic space the scalar correlates
				// with dominance; treat as a regression signal.
				t.Logf("note: halving frontier member %s is dominated by grid point %s", m.ID, e.ID)
			}
		}
	}
}

// TestExplorerOutputsWrite exercises the artifact writers end to end.
func TestExplorerOutputsWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	rep := runExplorer(t, &Explorer{
		Space:    smallSpace(t, 2000),
		Strategy: Random{Seed: 3, Samples: 3},
		Policy:   campaign.Policy{Jobs: 4},
	})
	dir := t.TempDir()
	if err := rep.WriteOutputs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pareto.jsonl", "pareto.csv", "summary.txt"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty (err=%v)", name, err)
		}
	}
}
