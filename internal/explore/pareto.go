package explore

import (
	"sort"

	"sttsim/internal/mem"
	"sttsim/internal/sim"
)

// RouterAreaMM2 is the die area charged per network node: a 7-port 128-bit
// wormhole router with its link drivers at 32nm. The paper does not give a
// router area figure, so this is a representative constant — it matters only
// as a topology-dependent offset (more nodes, more routers), never as a
// per-technology difference.
const RouterAreaMM2 = 0.175

// Objectives is the minimization vector a point is judged on.
type Objectives struct {
	// LatencyCycles is the requester-observed mean uncore round trip
	// (network + bank queuing), in cycles.
	LatencyCycles float64 `json:"latency_cycles"`
	// EnergyJ is the total uncore energy over the measurement window.
	EnergyJ float64 `json:"energy_j"`
	// AreaMM2 is the cache-stack die area: every bank at its technology's
	// Table 2 footprint plus a per-router constant.
	AreaMM2 float64 `json:"area_mm2"`
}

// Dominates reports whether a is at least as good as b on every objective and
// strictly better on at least one (all objectives minimized).
func Dominates(a, b Objectives) bool {
	if a.LatencyCycles > b.LatencyCycles || a.EnergyJ > b.EnergyJ || a.AreaMM2 > b.AreaMM2 {
		return false
	}
	return a.LatencyCycles < b.LatencyCycles || a.EnergyJ < b.EnergyJ || a.AreaMM2 < b.AreaMM2
}

// Scalar collapses the vector into a single rank key (the product of the
// objectives — scale-free and monotone in each axis). Used only where a total
// order is needed: successive-halving survivor selection and the ranked
// summary. Frontier membership always uses full dominance.
func (o Objectives) Scalar() float64 {
	return o.LatencyCycles * o.EnergyJ * o.AreaMM2
}

// Evaluation is one scored point.
type Evaluation struct {
	ID          string   `json:"id"`
	Values      []string `json:"values"`
	Fingerprint string   `json:"fingerprint"`
	// Cycles is the measurement budget this evaluation ran at (successive
	// halving scores cheap, short runs before committing to full ones).
	Cycles uint64 `json:"cycles"`

	Objectives

	// Throughput (instructions/cycle, all cores) is reported for context; it
	// is not an optimization objective.
	Throughput float64 `json:"throughput"`
}

// Score derives the objective vector from a finished run.
func Score(cfg sim.Config, r *sim.Result) Objectives {
	return Objectives{
		LatencyCycles: r.Latency.MeanTotal(),
		EnergyJ:       r.Energy.UncoreJ(),
		AreaMM2:       areaMM2(r.Config),
	}
}

// areaMM2 computes the cache-stack area of a resolved configuration. It uses
// the Result's embedded config, whose hybrid split has already been resolved
// from the profile.
func areaMM2(cfg sim.Config) float64 {
	topo := cfg.Topology()
	tech := cfg.BankTech()
	banks := topo.NumBanks()
	hybrid := cfg.HybridSRAMBanks
	if hybrid > banks {
		hybrid = banks
	}
	return float64(banks-hybrid)*tech.AreaMM2 +
		float64(hybrid)*mem.SRAM.AreaMM2 +
		float64(topo.NumNodes())*RouterAreaMM2
}

// Frontier is the incrementally maintained non-dominated set. Membership is
// order-independent: adding the same evaluations in any order yields the same
// set, which is what makes the frontier deterministic at any parallelism.
type Frontier struct {
	pts map[string]Evaluation // by ID
}

// NewFrontier returns an empty frontier.
func NewFrontier() *Frontier { return &Frontier{pts: make(map[string]Evaluation)} }

// Add offers an evaluation to the frontier. It returns true when the point
// enters (possibly evicting now-dominated members), false when an existing
// member dominates it. Re-adding a member updates it in place.
func (f *Frontier) Add(e Evaluation) bool {
	for id, m := range f.pts {
		if id == e.ID {
			continue
		}
		if Dominates(m.Objectives, e.Objectives) {
			return false
		}
		if Dominates(e.Objectives, m.Objectives) {
			delete(f.pts, id)
		}
	}
	f.pts[e.ID] = e
	return true
}

// Len returns the member count.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns the frontier in canonical ID order.
func (f *Frontier) Points() []Evaluation {
	out := make([]Evaluation, 0, len(f.pts))
	for _, e := range f.pts {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ranked returns the frontier ordered best-first by the scalar rank key,
// ties broken by ID.
func (f *Frontier) Ranked() []Evaluation {
	out := f.Points()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Scalar(), out[j].Scalar()
		if a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out
}
