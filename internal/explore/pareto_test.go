package explore

import (
	"fmt"
	"testing"
)

// synthEval builds a deterministic evaluation from three objective values.
func synthEval(id string, lat, en, area float64) Evaluation {
	return Evaluation{
		ID:         id,
		Objectives: Objectives{LatencyCycles: lat, EnergyJ: en, AreaMM2: area},
	}
}

func TestDominates(t *testing.T) {
	a := Objectives{1, 1, 1}
	b := Objectives{2, 2, 2}
	if !Dominates(a, b) {
		t.Fatal("strictly better on all axes must dominate")
	}
	if Dominates(b, a) {
		t.Fatal("strictly worse must not dominate")
	}
	c := Objectives{1, 3, 1}
	if Dominates(a, c) != true {
		t.Fatal("equal-or-better with one strict win must dominate")
	}
	if Dominates(c, a) {
		t.Fatal("worse on one axis must not dominate")
	}
	if Dominates(a, a) {
		t.Fatal("a point must not dominate itself (no strict win)")
	}
}

// TestFrontierOrderIndependent is the determinism property underlying the
// parallel search: the frontier is a function of the evaluation set, not of
// arrival order.
func TestFrontierOrderIndependent(t *testing.T) {
	evals := []Evaluation{
		synthEval("a", 10, 10, 10),
		synthEval("b", 5, 20, 10),
		synthEval("c", 20, 5, 10),
		synthEval("d", 4, 4, 4), // dominates a, b, c
		synthEval("e", 4, 4, 50),
		synthEval("f", 100, 100, 1),
	}
	// Build the frontier under several arrival orders (rotations + reversal)
	// and require identical membership.
	var want []Evaluation
	for rot := 0; rot <= len(evals); rot++ {
		order := append(append([]Evaluation{}, evals[rot%len(evals):]...), evals[:rot%len(evals)]...)
		if rot == len(evals) {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		f := NewFrontier()
		for _, e := range order {
			f.Add(e)
		}
		got := f.Points()
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("rotation %d: frontier size %d, want %d", rot, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("rotation %d: member %d is %s, want %s", rot, i, got[i].ID, want[i].ID)
			}
		}
	}
	if len(want) != 2 { // d and f survive
		t.Fatalf("frontier = %v, want {d, f}", want)
	}
}

// TestFrontierProperty: no frontier member is dominated by ANY evaluated
// point — the core Pareto invariant, exercised over a seeded synthetic cloud.
func TestFrontierProperty(t *testing.T) {
	// Deterministic pseudo-random cloud via splitmix64 (no time, no math/rand
	// global state).
	state := uint64(0xC0FFEE)
	next := func() float64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z%10000)/100.0 + 1
	}
	var evals []Evaluation
	f := NewFrontier()
	for i := 0; i < 500; i++ {
		e := synthEval(fmt.Sprintf("p%03d", i), next(), next(), next())
		evals = append(evals, e)
		f.Add(e)
	}
	members := f.Points()
	if len(members) == 0 {
		t.Fatal("empty frontier over a non-empty cloud")
	}
	for _, m := range members {
		for _, e := range evals {
			if e.ID == m.ID {
				continue
			}
			if Dominates(e.Objectives, m.Objectives) {
				t.Fatalf("frontier member %s is dominated by evaluated point %s", m.ID, e.ID)
			}
		}
	}
	// And the converse: every non-member is dominated by some member.
	byID := map[string]bool{}
	for _, m := range members {
		byID[m.ID] = true
	}
	for _, e := range evals {
		if byID[e.ID] {
			continue
		}
		dominated := false
		for _, m := range members {
			if Dominates(m.Objectives, e.Objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("non-member %s is not dominated by any frontier member", e.ID)
		}
	}
}

func TestFrontierRankedDeterministic(t *testing.T) {
	f := NewFrontier()
	f.Add(synthEval("b", 2, 3, 4)) // scalar 24
	f.Add(synthEval("a", 4, 3, 2)) // scalar 24, tie -> ID order
	f.Add(synthEval("c", 1, 2, 5)) // scalar 10, best; dominates nothing
	ranked := f.Ranked()
	ids := []string{ranked[0].ID, ranked[1].ID, ranked[2].ID}
	if ids[0] != "c" || ids[1] != "a" || ids[2] != "b" {
		t.Fatalf("ranked order = %v, want [c a b]", ids)
	}
}
