package explore

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sttsim/internal/campaign"
	"sttsim/internal/core"
	"sttsim/internal/sim"
	api "sttsim/pkg/sttsim"
)

// Explorer drives a search strategy over a parameter space on the campaign
// engine, inheriting its dedup (fingerprint memo), supervision (timeouts,
// retries, panic recovery), parallelism, and checkpoint journal.
type Explorer struct {
	Space    *Space
	Strategy Strategy

	// Policy tunes the underlying campaign engine (Jobs bounds parallelism).
	Policy campaign.Policy

	// RunFunc substitutes the evaluator; nil runs sim.RunContext in-process.
	// RemoteRunFunc builds one that evaluates against a live sttsimd.
	RunFunc campaign.RunFunc

	// JournalPath checkpoints every finished evaluation; "" disables.
	// With Resume, finished runs replay from the journal instead of
	// re-executing.
	JournalPath string
	Resume      bool

	// Logf receives progress lines (default: discarded).
	Logf func(format string, args ...any)
}

// Failure records a point the evaluator could not score.
type Failure struct {
	ID    string `json:"id"`
	Cause string `json:"cause"`
	Error string `json:"error"`
}

// Report is the outcome of one exploration.
type Report struct {
	Strategy  string `json:"strategy"`
	SpaceSize int    `json:"space_size"` // raw cartesian size
	Pruned    int    `json:"pruned"`     // points the constraints rejected

	// Evaluations holds every full-budget evaluation, in canonical ID order —
	// the set the frontier is drawn from.
	Evaluations []Evaluation `json:"evaluations"`
	// Frontier is the non-dominated subset, in canonical ID order.
	Frontier []Evaluation `json:"frontier"`
	// Failures lists points whose runs ended in a terminal error.
	Failures []Failure `json:"failures,omitempty"`

	// TotalSimCycles is the summed measurement budget of every completed
	// evaluation, at every budget level — the currency successive halving
	// economizes relative to a full grid.
	TotalSimCycles uint64 `json:"total_sim_cycles"`
	// LowBudgetEvals counts the cheap scouting evaluations below full budget.
	LowBudgetEvals int `json:"low_budget_evals"`

	// Engine is the campaign engine's digest (executed, memo hits, replays).
	Engine campaign.Stats `json:"engine"`
}

// Run executes the search to completion and assembles the report.
func (x *Explorer) Run(ctx context.Context) (*Report, error) {
	if x.Space == nil || x.Strategy == nil {
		return nil, fmt.Errorf("explore: explorer needs a space and a strategy")
	}
	logf := x.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fullBudget := x.Space.Base.MeasureCycles
	if fullBudget == 0 {
		fullBudget = 60_000 // sim.Config's own default
	}

	eng := campaign.NewWithContext(ctx, x.Policy)
	if x.RunFunc != nil {
		eng.SetRunFunc(x.RunFunc)
	}
	defer eng.Close()
	if x.JournalPath != "" {
		if x.Resume {
			recs, dropped, err := campaign.LoadJournalEx(x.JournalPath)
			if err != nil {
				return nil, err
			}
			if n := eng.Preload(recs); n > 0 || dropped > 0 {
				logf("explore: resumed %d finished evaluation(s) from %s (%d corrupt line(s) dropped)",
					n, x.JournalPath, dropped)
			}
		}
		j, err := campaign.OpenJournal(x.JournalPath, x.Resume)
		if err != nil {
			return nil, err
		}
		eng.AttachJournal(j)
	}

	rep := &Report{Strategy: x.Strategy.Name(), SpaceSize: x.Space.Size()}
	_, rep.Pruned = x.Space.Points()

	batch := func(ctx context.Context, pts []Point, budget uint64) ([]*Evaluation, error) {
		logf("explore: evaluating %d point(s) at %d cycles", len(pts), budget)
		type slot struct {
			cfg    sim.Config
			handle *campaign.Handle
			err    error
		}
		slots := make([]slot, len(pts))
		for i, p := range pts {
			cfg, err := x.Space.Config(p)
			if err != nil {
				slots[i].err = err
				continue
			}
			cfg.MeasureCycles = budget
			slots[i].cfg = cfg
			slots[i].handle = eng.SubmitKeyed(cfg.Fingerprint(), cfg, nil)
		}
		out := make([]*Evaluation, len(pts))
		for i, p := range pts {
			var res *sim.Result
			err := slots[i].err
			if err == nil && slots[i].handle != nil {
				res, err = slots[i].handle.Outcome()
			}
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				rep.Failures = append(rep.Failures, Failure{
					ID: p.ID, Cause: campaign.Cause(err), Error: err.Error(),
				})
				logf("explore: %s failed (%s): %v", p.ID, campaign.Cause(err), err)
				continue
			}
			e := &Evaluation{
				ID:          p.ID,
				Values:      append([]string(nil), p.Values...),
				Fingerprint: slots[i].handle.Key,
				Cycles:      budget,
				Objectives:  Score(slots[i].cfg, res),
				Throughput:  res.InstructionThroughput,
			}
			out[i] = e
			rep.TotalSimCycles += budget
			if budget < fullBudget {
				rep.LowBudgetEvals++
			}
		}
		return out, nil
	}

	finals, err := x.Strategy.Run(ctx, x.Space, fullBudget, batch)
	if err != nil {
		return nil, err
	}

	frontier := NewFrontier()
	for _, e := range finals {
		if e == nil {
			continue
		}
		rep.Evaluations = append(rep.Evaluations, *e)
		frontier.Add(*e)
	}
	sort.Slice(rep.Evaluations, func(i, j int) bool { return rep.Evaluations[i].ID < rep.Evaluations[j].ID })
	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].ID < rep.Failures[j].ID })
	rep.Frontier = frontier.Points()
	rep.Engine = eng.Stats()
	logf("explore: %d/%d full-budget evaluation(s), frontier size %d, %s",
		len(rep.Evaluations), len(finals), len(rep.Frontier), rep.Engine)
	return rep, nil
}

// WritePareto streams the frontier as JSONL, one canonical-order member per
// line — byte-identical across runs of the same seed and space at any
// parallelism.
func (r *Report) WritePareto(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Frontier {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the frontier as a spreadsheet-friendly table.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id"}
	if len(r.Frontier) > 0 {
		for range r.Frontier[0].Values {
			header = append(header, "") // patched below from the IDs
		}
	}
	header = append(header, "latency_cycles", "energy_j", "area_mm2", "throughput", "cycles")
	// Axis names come from the canonical IDs ("axis=value,..."), so the CSV
	// is self-describing without threading the Space through.
	if len(r.Frontier) > 0 {
		for i, part := range strings.Split(r.Frontier[0].ID, ",") {
			if eq := strings.IndexByte(part, '='); eq > 0 && 1+i < len(header) {
				header[1+i] = part[:eq]
			}
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range r.Frontier {
		row := []string{e.ID}
		row = append(row, e.Values...)
		row = append(row,
			strconv.FormatFloat(e.LatencyCycles, 'g', -1, 64),
			strconv.FormatFloat(e.EnergyJ, 'g', -1, 64),
			strconv.FormatFloat(e.AreaMM2, 'g', -1, 64),
			strconv.FormatFloat(e.Throughput, 'g', -1, 64),
			strconv.FormatUint(e.Cycles, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummary renders the human-readable digest: the frontier ranked
// best-first by the scalar key, then the search accounting.
func (r *Report) WriteSummary(w io.Writer) error {
	f := NewFrontier()
	for _, e := range r.Frontier {
		f.Add(e)
	}
	fmt.Fprintf(w, "strategy %s over %d-point space (%d pruned by constraints)\n",
		r.Strategy, r.SpaceSize, r.Pruned)
	fmt.Fprintf(w, "%d full-budget evaluation(s), %d cheap scout(s), %d total simulated cycles\n",
		len(r.Evaluations), r.LowBudgetEvals, r.TotalSimCycles)
	fmt.Fprintf(w, "engine: %s\n", r.Engine)
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "%d failure(s):\n", len(r.Failures))
		for _, fl := range r.Failures {
			fmt.Fprintf(w, "  %-40s %s\n", fl.ID, fl.Cause)
		}
	}
	fmt.Fprintf(w, "\nPareto frontier (%d point(s), best scalar rank first):\n", len(r.Frontier))
	fmt.Fprintf(w, "  %-4s %-44s %12s %12s %10s %8s\n", "rank", "point", "latency(cyc)", "energy(J)", "area(mm2)", "IPC")
	for i, e := range f.Ranked() {
		fmt.Fprintf(w, "  %-4d %-44s %12.2f %12.4g %10.2f %8.3f\n",
			i+1, e.ID, e.LatencyCycles, e.EnergyJ, e.AreaMM2, e.Throughput)
	}
	return nil
}

// WriteOutputs materializes the three artifacts under dir: pareto.jsonl,
// pareto.csv, and summary.txt.
func (r *Report) WriteOutputs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name  string
		write func(io.Writer) error
	}{
		{"pareto.jsonl", r.WritePareto},
		{"pareto.csv", r.WriteCSV},
		{"summary.txt", r.WriteSummary},
	}
	for _, spec := range files {
		f, err := os.Create(filepath.Join(dir, spec.name))
		if err != nil {
			return err
		}
		if err := spec.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// RemoteRunFunc builds a campaign.RunFunc that evaluates configurations
// against a live sttsimd through the client SDK: the config is rendered back
// into a wire JobSpec (bench carries the workload name — mixes are not
// expressible on the wire), the job runs remotely, and the canonical result
// bytes decode into the same sim.Result an in-process run returns.
func RemoteRunFunc(c *api.Client, bench string) campaign.RunFunc {
	return func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		spec := api.JobSpec{
			Scheme:                strings.ToLower(cfg.Scheme.String()),
			Bench:                 bench,
			Seed:                  cfg.Seed,
			WarmupCycles:          cfg.WarmupCycles,
			MeasureCycles:         cfg.MeasureCycles,
			Regions:               cfg.Regions,
			Hops:                  cfg.Hops,
			WriteBufferEntries:    cfg.WriteBufferEntries,
			ReadPreemption:        cfg.ReadPreemption,
			ExtraReqVC:            cfg.ExtraReqVC,
			WBWindow:              cfg.WBWindow,
			HoldCap:               cfg.HoldCap,
			BankQueueDepth:        cfg.BankQueueDepth,
			HybridSRAMBanks:       cfg.HybridSRAMBanks,
			EarlyWriteTermination: cfg.EarlyWriteTermination,
			AuditInterval:         cfg.AuditInterval,
			WatchdogCycles:        cfg.WatchdogCycles,
			TechProfile:           cfg.TechProfile,
			MeshX:                 cfg.MeshX,
			MeshY:                 cfg.MeshY,
			Layers:                cfg.Layers,
			Corner:                cfg.PlacementSet && cfg.Placement == core.PlacementCorner,
		}
		_, data, err := c.Run(ctx, spec)
		if err != nil {
			return nil, err
		}
		var res sim.Result
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, fmt.Errorf("explore: decode remote result: %w", err)
		}
		return &res, nil
	}
}
