package explore

import (
	"context"
	"reflect"
	"testing"

	"sttsim/internal/sim"
	"sttsim/internal/workload"
)

// fakeSpace builds a small pure-synthetic space; the fake BatchFunc never
// binds configs, so the base just has to validate.
func fakeSpace(t *testing.T, axisSizes ...int) *Space {
	t.Helper()
	base := sim.Config{
		Scheme:        sim.SchemeSTT4TSBWB,
		Assignment:    workload.Case1(),
		WarmupCycles:  100,
		MeasureCycles: 8000,
	}
	axes := make([]Axis, len(axisSizes))
	names := []string{"alpha", "beta", "gamma"}
	for i, n := range axisSizes {
		vals := make([]string, n)
		for j := range vals {
			vals[j] = string(rune('a' + j))
		}
		axes[i] = Axis{
			Name:   names[i],
			Values: vals,
			apply:  func(*sim.Config, string) error { return nil },
		}
	}
	s, err := NewSpace(base, axes...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fakeBatch scores points synthetically (a stable function of the ID) and
// tallies the cycles spent, so strategy accounting is testable without a
// simulator.
type fakeBatch struct {
	calls       int
	totalCycles uint64
	perBudget   map[uint64]int // points evaluated at each budget
}

func (f *fakeBatch) fn(ctx context.Context, pts []Point, budget uint64) ([]*Evaluation, error) {
	if f.perBudget == nil {
		f.perBudget = make(map[uint64]int)
	}
	f.calls++
	out := make([]*Evaluation, len(pts))
	for i, p := range pts {
		f.totalCycles += budget
		f.perBudget[budget] += len(pts[i:i+1])
		// A stable synthetic score: hash of the ID.
		h := uint64(14695981039346656037)
		for _, c := range []byte(p.ID) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		v := float64(h%1000) + 1
		out[i] = &Evaluation{
			ID: p.ID, Values: append([]string(nil), p.Values...), Cycles: budget,
			Objectives: Objectives{LatencyCycles: v, EnergyJ: v / 2, AreaMM2: 10},
		}
	}
	return out, nil
}

func TestGridEvaluatesEveryPointAtFullBudget(t *testing.T) {
	space := fakeSpace(t, 3, 2, 2) // 12 points
	var fb fakeBatch
	evals, err := Grid{}.Run(context.Background(), space, 8000, fb.fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 12 || fb.calls != 1 {
		t.Fatalf("grid: %d evals in %d calls, want 12 in 1", len(evals), fb.calls)
	}
	if fb.totalCycles != 12*8000 {
		t.Fatalf("grid spent %d cycles, want %d", fb.totalCycles, 12*8000)
	}
}

func TestRandomSampleIsSeededAndStable(t *testing.T) {
	space := fakeSpace(t, 4, 3) // 12 points
	run := func(seed uint64) []string {
		var fb fakeBatch
		evals, err := Random{Seed: seed, Samples: 5}.Run(context.Background(), space, 8000, fb.fn)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(evals))
		for i, e := range evals {
			ids[i] = e.ID
		}
		return ids
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different samples:\n%v\n%v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("sample size %d, want 5", len(a))
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew the identical sample %v", a)
	}
}

func TestSuccessiveHalvingPlan(t *testing.T) {
	s := SuccessiveHalving{Eta: 2, MinCycles: 1000}
	got := s.Plan(8000)
	want := []uint64{1000, 2000, 4000, 8000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plan = %v, want %v", got, want)
	}
	// A min that does not divide evenly still caps at the full budget.
	got = SuccessiveHalving{Eta: 3, MinCycles: 1000}.Plan(8000)
	want = []uint64{1000, 3000, 8000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("eta=3 plan = %v, want %v", got, want)
	}
	// min >= full collapses to a single full-budget round.
	got = SuccessiveHalving{MinCycles: 9999}.Plan(8000)
	want = []uint64{8000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("collapsed plan = %v, want %v", got, want)
	}
}

// TestSuccessiveHalvingBudgetAccounting pins the exact cycle spend of the
// n=8, eta=2 ladder and confirms it undercuts the grid's spend on the same
// space — the economy the strategy exists for.
func TestSuccessiveHalvingBudgetAccounting(t *testing.T) {
	space := fakeSpace(t, 2, 2, 2) // 8 points
	full := uint64(8000)
	var sh fakeBatch
	evals, err := SuccessiveHalving{Eta: 2, MinCycles: 1000}.Run(context.Background(), space, full, sh.fn)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds: 8 pts @1000, 4 @2000, 2 @4000, 1 @8000.
	wantPer := map[uint64]int{1000: 8, 2000: 4, 4000: 2, 8000: 1}
	if !reflect.DeepEqual(sh.perBudget, wantPer) {
		t.Fatalf("per-budget counts = %v, want %v", sh.perBudget, wantPer)
	}
	wantTotal := uint64(8*1000 + 4*2000 + 2*4000 + 1*8000)
	if sh.totalCycles != wantTotal {
		t.Fatalf("SH spent %d cycles, want %d", sh.totalCycles, wantTotal)
	}
	if len(evals) != 1 {
		t.Fatalf("final round returned %d evals, want 1", len(evals))
	}
	if evals[0].Cycles != full {
		t.Fatalf("finalist ran at %d cycles, want full budget %d", evals[0].Cycles, full)
	}

	var grid fakeBatch
	if _, err := (Grid{}).Run(context.Background(), space, full, grid.fn); err != nil {
		t.Fatal(err)
	}
	if sh.totalCycles >= grid.totalCycles {
		t.Fatalf("SH spent %d cycles, grid %d — halving must be cheaper", sh.totalCycles, grid.totalCycles)
	}
}

func TestSuccessiveHalvingKeepsBestByScalarRank(t *testing.T) {
	space := fakeSpace(t, 2, 2, 2)
	pts, _ := space.Points()
	// Compute the synthetic winner the fake batch should graduate: the
	// minimum scalar, ties by ID.
	var fb fakeBatch
	all, err := fb.fn(context.Background(), pts, 1000)
	if err != nil {
		t.Fatal(err)
	}
	best := all[0]
	for _, e := range all[1:] {
		if e.Scalar() < best.Scalar() || (e.Scalar() == best.Scalar() && e.ID < best.ID) {
			best = e
		}
	}
	var sh fakeBatch
	evals, err := SuccessiveHalving{Eta: 2, MinCycles: 1000}.Run(context.Background(), space, 8000, sh.fn)
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].ID != best.ID {
		t.Fatalf("finalist %s, want synthetic best %s", evals[0].ID, best.ID)
	}
}

func TestSuccessiveHalvingDropsFailedPoints(t *testing.T) {
	space := fakeSpace(t, 2, 2) // 4 points
	inner := &fakeBatch{}
	failID := ""
	batch := func(ctx context.Context, pts []Point, budget uint64) ([]*Evaluation, error) {
		out, err := inner.fn(ctx, pts, budget)
		if err != nil {
			return nil, err
		}
		if failID == "" {
			failID = pts[0].ID // fail the first point, every round
		}
		for i := range out {
			if out[i] != nil && out[i].ID == failID {
				out[i] = nil
			}
		}
		return out, nil
	}
	evals, err := SuccessiveHalving{Eta: 2, MinCycles: 2000}.Run(context.Background(), space, 8000, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evals {
		if e != nil && e.ID == failID {
			t.Fatalf("failed point %s graduated to the final round", failID)
		}
	}
}
