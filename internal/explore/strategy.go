package explore

import (
	"context"
	"fmt"
)

// BatchFunc evaluates a batch of points at a measurement budget (cycles) and
// returns one evaluation per point, aligned with the input; a nil entry is a
// point whose run failed (the explorer records the failure). Implementations
// run the batch in parallel and must be deterministic in value, not order.
type BatchFunc func(ctx context.Context, pts []Point, measureCycles uint64) ([]*Evaluation, error)

// Strategy decides which points to evaluate at which budget. The final
// returned evaluations are the candidates the strategy fully trusts — they
// all ran at the space's full measurement budget.
type Strategy interface {
	Name() string
	Run(ctx context.Context, space *Space, fullBudget uint64, eval BatchFunc) ([]*Evaluation, error)
}

// Grid exhaustively evaluates every valid point at full budget.
type Grid struct{}

// Name identifies the strategy in reports.
func (Grid) Name() string { return "grid" }

// Run evaluates the whole space in one batch.
func (Grid) Run(ctx context.Context, space *Space, fullBudget uint64, eval BatchFunc) ([]*Evaluation, error) {
	pts, _ := space.Points()
	return eval(ctx, pts, fullBudget)
}

// Random evaluates a seeded uniform sample (without replacement) of the valid
// points at full budget. The sample depends only on (Seed, space) — never on
// timing — so a re-run replays the identical subset.
type Random struct {
	Seed    uint64
	Samples int
}

// Name identifies the strategy in reports.
func (Random) Name() string { return "random" }

// Run samples and evaluates.
func (r Random) Run(ctx context.Context, space *Space, fullBudget uint64, eval BatchFunc) ([]*Evaluation, error) {
	if r.Samples <= 0 {
		return nil, fmt.Errorf("explore: random search needs samples > 0")
	}
	pts, _ := space.Points()
	shuffle(pts, r.Seed)
	if r.Samples < len(pts) {
		pts = pts[:r.Samples]
	}
	SortPoints(pts)
	return eval(ctx, pts, fullBudget)
}

// shuffle is a seeded Fisher-Yates over the points, driven by splitmix64 so
// the permutation is identical on every platform and run.
func shuffle(pts []Point, seed uint64) {
	state := seed ^ 0x9E3779B97F4A7C15
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := len(pts) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		pts[i], pts[j] = pts[j], pts[i]
	}
}

// SuccessiveHalving allocates measurement cycles adaptively: every candidate
// runs at a small budget first, then only the best 1/Eta (by the scalar rank
// key, ties broken by point ID) graduate to an Eta-times-larger budget, until
// the survivors run at the full budget. With n candidates, Eta=2, and
// MinCycles = full/2^k, total spent cycles are roughly (k+1) * n * MinCycles
// — far below the n * full a grid pays — while the full-budget finalists
// still anchor the frontier.
type SuccessiveHalving struct {
	// Eta is the keep fraction denominator per round (default 2).
	Eta int
	// MinCycles is the first round's measurement budget (default full/8,
	// floored at 1000 cycles).
	MinCycles uint64
	// Seed drives the optional subsample when MaxCandidates caps round zero.
	Seed uint64
	// MaxCandidates caps the initial cohort (0 = all valid points).
	MaxCandidates int
}

// Name identifies the strategy in reports.
func (SuccessiveHalving) Name() string { return "halving" }

// Plan returns the budget ladder for a full budget: MinCycles doubling by Eta
// up to (and capped at) the full budget. Exposed so the budget-accounting
// unit tests can pin the schedule.
func (s SuccessiveHalving) Plan(fullBudget uint64) []uint64 {
	eta, min := s.params(fullBudget)
	var ladder []uint64
	for b := min; b < fullBudget; b *= uint64(eta) {
		ladder = append(ladder, b)
	}
	return append(ladder, fullBudget)
}

// Keep returns how many of n candidates survive a round (at least one).
func (s SuccessiveHalving) Keep(n int, fullBudget uint64) int {
	eta, _ := s.params(fullBudget)
	k := (n + eta - 1) / eta
	if k < 1 {
		k = 1
	}
	return k
}

func (s SuccessiveHalving) params(fullBudget uint64) (eta int, min uint64) {
	eta = s.Eta
	if eta < 2 {
		eta = 2
	}
	min = s.MinCycles
	if min == 0 {
		min = fullBudget / 8
	}
	if min < 1000 {
		min = 1000
	}
	if min > fullBudget {
		min = fullBudget
	}
	return eta, min
}

// Run walks the budget ladder.
func (s SuccessiveHalving) Run(ctx context.Context, space *Space, fullBudget uint64, eval BatchFunc) ([]*Evaluation, error) {
	pts, _ := space.Points()
	if s.MaxCandidates > 0 && s.MaxCandidates < len(pts) {
		shuffle(pts, s.Seed)
		pts = pts[:s.MaxCandidates]
		SortPoints(pts)
	}
	ladder := s.Plan(fullBudget)
	for round, budget := range ladder {
		evals, err := eval(ctx, pts, budget)
		if err != nil {
			return nil, err
		}
		if round == len(ladder)-1 {
			return evals, nil
		}
		// Survivor selection: rank the successful evaluations by the scalar
		// key, deterministic ties by ID; failed points are eliminated.
		ok := make([]*Evaluation, 0, len(evals))
		for _, e := range evals {
			if e != nil {
				ok = append(ok, e)
			}
		}
		if len(ok) == 0 {
			return nil, fmt.Errorf("explore: every candidate failed at the %d-cycle round", budget)
		}
		rankEvals(ok)
		keep := s.Keep(len(ok), fullBudget)
		if keep > len(ok) {
			keep = len(ok)
		}
		next := make([]Point, keep)
		for i := 0; i < keep; i++ {
			next[i] = Point{Values: ok[i].Values, ID: ok[i].ID}
		}
		SortPoints(next)
		pts = next
	}
	return nil, fmt.Errorf("explore: empty budget ladder") // unreachable
}

// rankEvals sorts best-first by scalar key, ties by ID.
func rankEvals(evals []*Evaluation) {
	for i := 1; i < len(evals); i++ {
		for j := i; j > 0; j-- {
			a, b := evals[j], evals[j-1]
			if a.Scalar() < b.Scalar() || (a.Scalar() == b.Scalar() && a.ID < b.ID) {
				evals[j], evals[j-1] = evals[j-1], evals[j]
			} else {
				break
			}
		}
	}
}
