// Package mem implements the memory-device substrate of the simulator: the
// SRAM and STT-RAM technology parameters of the paper's Table 2, a cache-bank
// service model with a controller queue (where the Figure 7 "queuing latency"
// accrues), the 20-entry read-preemptive SRAM write buffer of Sun et al.
// (HPCA'09) used as the comparison baseline in Section 4.4, and the
// fixed-latency DRAM / memory-controller model of Table 1.
package mem

// Tech captures one row of Table 2: the device-level parameters of a cache
// bank technology at 32nm, 3GHz.
type Tech struct {
	Name           string
	CapacityMB     int     // usable capacity per bank
	AreaMM2        float64 // bank area
	ReadEnergyNJ   float64 // energy per read access
	WriteEnergyNJ  float64 // energy per write access
	LeakagePowerMW float64 // leakage power at 80C
	ReadLatencyNS  float64
	WriteLatencyNS float64
	ReadCycles     uint64 // read service time at 3GHz
	WriteCycles    uint64 // write service time at 3GHz
}

// SRAM is the 1MB SRAM bank of Table 2.
var SRAM = Tech{
	Name:           "SRAM",
	CapacityMB:     1,
	AreaMM2:        3.03,
	ReadEnergyNJ:   0.168,
	WriteEnergyNJ:  0.168,
	LeakagePowerMW: 444.6,
	ReadLatencyNS:  0.702,
	WriteLatencyNS: 0.702,
	ReadCycles:     3,
	WriteCycles:    3,
}

// STTRAM is the 4MB STT-RAM bank of Table 2. It occupies roughly the same
// area as the 1MB SRAM bank (4x density) but its writes take 33 cycles.
var STTRAM = Tech{
	Name:           "STT-RAM",
	CapacityMB:     4,
	AreaMM2:        3.39,
	ReadEnergyNJ:   0.278,
	WriteEnergyNJ:  0.765,
	LeakagePowerMW: 190.5,
	ReadLatencyNS:  0.880,
	WriteLatencyNS: 10.67,
	ReadCycles:     3,
	WriteCycles:    33,
}

// Latency returns the service time in cycles for the given operation.
func (t Tech) Latency(op Op) uint64 {
	if op == OpWrite {
		return t.WriteCycles
	}
	return t.ReadCycles
}

// AccessEnergyNJ returns the per-access energy in nanojoules for op.
func (t Tech) AccessEnergyNJ(op Op) float64 {
	if op == OpWrite {
		return t.WriteEnergyNJ
	}
	return t.ReadEnergyNJ
}

// PCRAM is an *extension* technology (the paper's introduction lists
// phase-change RAM as the other emerging candidate with an even harsher
// write asymmetry). The values are representative 32nm estimates in the
// spirit of Table 2 — denser and lower-leakage than STT-RAM, with reads a
// couple of cycles slower and writes roughly 5x longer. Used by the
// write-latency inflection ablation to show how far the network-level
// scheme scales as the write penalty grows.
var PCRAM = Tech{
	Name:           "PCRAM",
	CapacityMB:     16,
	AreaMM2:        3.2,
	ReadEnergyNJ:   0.40,
	WriteEnergyNJ:  1.50,
	LeakagePowerMW: 90.0,
	ReadLatencyNS:  2.0,
	WriteLatencyNS: 50.0,
	ReadCycles:     6,
	WriteCycles:    150,
}

// WithWriteCycles returns a copy of the technology with the bank write
// service time replaced — the knob of the write-latency sensitivity sweep.
func (t Tech) WithWriteCycles(cycles uint64) Tech {
	t.WriteCycles = cycles
	t.WriteLatencyNS = float64(cycles) / 3.0
	t.Name = t.Name + "*"
	return t
}
