package mem

// Op distinguishes bank read and write accesses.
type Op uint8

const (
	// OpRead is a short read access (3 cycles on both technologies).
	OpRead Op = iota
	// OpWrite is a long write access (33 cycles on STT-RAM). Cache fills and
	// dirty writebacks into a bank are writes.
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Request is one access presented to a bank controller or memory controller.
type Request struct {
	Op   Op
	Addr uint64
	ID   uint64 // caller-assigned, echoed in the Completion
	Proc int    // originating processor (memory-controller quota accounting)

	// Arrive is the cycle the request entered the controller queue; set by
	// Enqueue and used to compute the queuing-delay component of Figure 7.
	Arrive uint64
}

// Completion reports a finished access.
type Completion struct {
	Req *Request
	// Done is the cycle service finished.
	Done uint64
	// QueueDelay is the time spent waiting in the controller queue before the
	// bank started servicing the request (the Figure 7 "queue lat" term).
	QueueDelay uint64
	// Service is the bank service time, including write-buffer detection
	// overhead when a buffer is configured.
	Service uint64
	// BufferHit reports that a read was satisfied from the write buffer.
	BufferHit bool
	// Preempted counts how many times an in-flight buffered write was aborted
	// by read preemption while this request was being serviced (always 0 for
	// the request itself; preemption statistics live on the bank).
	Preempted uint64
}

// BankStats aggregates a bank's activity for performance and energy reports.
type BankStats struct {
	Reads          uint64
	Writes         uint64
	BufferHits     uint64
	Preemptions    uint64
	BusyCycles     uint64
	QueuedCycles   uint64 // sum of queue delays over completed requests
	MaxQueueDepth  int
	EnqueuedTotal  uint64
	DrainedWrites  uint64 // writes moved from buffer to array
	DetectOverhead uint64 // cycles spent on the 1-cycle read/write detection
	EarlyTermSaved uint64 // write cycles saved by early termination
	RetriedWrites  uint64 // write re-pulses caused by stochastic write failures
}

// Bank models one L2 cache bank: a single-ported array with technology-
// dependent service times, fronted by a FIFO controller queue and optionally
// by a read-preemptive SRAM write buffer (Section 4.4 baseline).
//
// The bank serializes accesses: a request occupies the array for
// tech.Latency(op) cycles. Requests that arrive while the array is busy wait
// in the controller queue; that waiting time is the paper's bank queuing
// latency.
type Bank struct {
	tech  Tech
	queue []*Request
	buf   *WriteBuffer // nil when no write buffer is configured

	current      *Request
	currentStart uint64
	busyUntil    uint64

	// draining, when non-nil, is the buffered write the array is currently
	// committing; read preemption may abort it.
	draining   *bufEntry
	preemption bool

	// Early write termination (Zhou et al., ICCAD'09): writes whose bit
	// flips complete early finish before the worst-case pulse. Modeled as a
	// deterministic pseudo-random service fraction per write.
	earlyTerm bool
	etState   uint64

	stats BankStats
}

// NewBank returns a bank built from the given technology.
func NewBank(tech Tech) *Bank {
	return &Bank{tech: tech}
}

// NewBufferedBank returns a bank fronted by an entries-deep write buffer with
// optional read preemption, reproducing the BUFF-20 design point when
// entries=20.
func NewBufferedBank(tech Tech, entries int, preemption bool) *Bank {
	return &Bank{tech: tech, buf: NewWriteBuffer(entries), preemption: preemption}
}

// Tech returns the bank's technology parameters.
func (b *Bank) Tech() Tech { return b.tech }

// EnableEarlyTermination turns on the Zhou et al. early-write-termination
// model: each array write's duration is drawn deterministically (from seed)
// in [40%, 100%] of the worst-case pulse, reflecting that most writes flip
// only a fraction of the cell bits. Orthogonal to (and combinable with) the
// network-level scheme, as Section 5 observes.
func (b *Bank) EnableEarlyTermination(seed uint64) {
	b.earlyTerm = true
	b.etState = seed | 1
}

// writeService returns the array-write duration, applying early termination
// when enabled.
func (b *Bank) writeService() uint64 {
	full := b.tech.WriteCycles
	if !b.earlyTerm || full <= 2 {
		return full
	}
	// splitmix64 step for a deterministic per-write fraction.
	b.etState += 0x9E3779B97F4A7C15
	z := b.etState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// Uniform in [0.4, 1.0] of the worst-case pulse.
	frac := 0.4 + 0.6*float64(z>>11)/(1<<53)
	svc := uint64(float64(full)*frac + 0.5)
	if svc < 1 {
		svc = 1
	}
	b.stats.EarlyTermSaved += full - svc
	return svc
}

// Stats returns a copy of the bank's accumulated statistics.
func (b *Bank) Stats() BankStats { return b.stats }

// QueueLen returns the number of requests waiting in the controller queue.
func (b *Bank) QueueLen() int { return len(b.queue) }

// BufferLen returns the number of writes parked in the write buffer (0 when
// the bank has none) — the write-buffer-depth probe of the metrics registry.
func (b *Bank) BufferLen() int {
	if b.buf == nil {
		return 0
	}
	return b.buf.Len()
}

// Busy reports whether the array is servicing a request (or drain) at now.
func (b *Bank) Busy(now uint64) bool {
	return now < b.busyUntil && (b.current != nil || b.draining != nil)
}

// BusyUntil returns the cycle the array becomes free (0 when never used).
func (b *Bank) BusyUntil() uint64 { return b.busyUntil }

// Enqueue adds a request to the controller queue at cycle now. If read
// preemption is enabled and the array is mid-drain, the drain is aborted so
// the read can start sooner (Sun et al.'s read-preemptive write buffer).
func (b *Bank) Enqueue(r *Request, now uint64) {
	r.Arrive = now
	b.stats.EnqueuedTotal++
	if b.preemption && r.Op == OpRead && b.draining != nil && now < b.busyUntil {
		// Abort the in-flight buffered write; it returns to the buffer and
		// will be retried on a later idle period.
		b.buf.Restore(b.draining)
		b.draining = nil
		b.busyUntil = now
		b.stats.Preemptions++
	}
	b.queue = append(b.queue, r)
	if len(b.queue) > b.stats.MaxQueueDepth {
		b.stats.MaxQueueDepth = len(b.queue)
	}
}

// Tick advances the bank one cycle and returns any completion that finished
// at cycle now. At most one request completes per cycle because the array is
// single-ported. The returned completion is freshly allocated; hot-loop
// callers use TickInto with a reused Completion instead.
func (b *Bank) Tick(now uint64) *Completion {
	var c Completion
	if b.TickInto(now, &c) {
		return &c
	}
	return nil
}

// TickInto is the allocation-free form of Tick: it writes any completion that
// finished at cycle now into *out and reports whether one did. The pointed-to
// value is only meaningful on a true return.
func (b *Bank) TickInto(now uint64, out *Completion) bool {
	if now < b.busyUntil {
		b.stats.BusyCycles++
		return false
	}

	// Retire whatever just finished.
	done := false
	if b.current != nil {
		r := b.current
		b.current = nil
		*out = Completion{
			Req:        r,
			Done:       now,
			QueueDelay: b.currentStart - r.Arrive,
			Service:    now - b.currentStart,
		}
		b.stats.QueuedCycles += out.QueueDelay
		done = true
	}
	if b.draining != nil {
		// Drain committed successfully; the entry leaves the system.
		b.draining = nil
		b.stats.DrainedWrites++
	}

	b.startNext(now)
	return done
}

// startNext begins servicing the next queued request, or a buffered-write
// drain when the queue is empty.
func (b *Bank) startNext(now uint64) {
	if len(b.queue) > 0 {
		r := b.queue[0]
		copy(b.queue, b.queue[1:])
		b.queue = b.queue[:len(b.queue)-1]
		b.serve(r, now)
		return
	}
	if b.buf != nil && !b.buf.Empty() {
		// Idle: drain the oldest buffered write into the array.
		b.draining = b.buf.Pop()
		b.busyUntil = now + b.tech.WriteCycles
	}
}

// serve starts servicing request r at cycle now.
func (b *Bank) serve(r *Request, now uint64) {
	b.current = r
	b.currentStart = now
	service := b.tech.Latency(r.Op)
	if b.buf == nil && r.Op == OpWrite {
		service = b.writeService()
	}

	if b.buf != nil {
		// Every access pays the 1-cycle read/write detection overhead that
		// the paper charges against the write-buffer design (Section 4.4).
		service = 1
		b.stats.DetectOverhead++
		switch r.Op {
		case OpWrite:
			if b.buf.Full() {
				// Buffer full: the write must go straight to the array.
				service += b.writeService()
			} else {
				// The write completes into the SRAM buffer at SRAM speed.
				b.buf.Push(r.Addr, now)
				service += SRAM.WriteCycles
			}
		case OpRead:
			if b.buf.Probe(r.Addr) {
				// Hit in the write buffer: served at SRAM read speed.
				service += SRAM.ReadCycles
				b.stats.BufferHits++
			} else {
				service += b.tech.ReadCycles
			}
		}
	}

	if r.Op == OpWrite {
		b.stats.Writes++
	} else {
		b.stats.Reads++
	}
	b.busyUntil = now + service
}

// NoteRetriedWrite records one write re-pulse caused by a stochastic write
// failure. The retry itself re-enters the queue as an ordinary write, so it
// is already counted in Writes/BusyCycles (and the energy model charges the
// extra pulse); this counter just makes the retries attributable.
func (b *Bank) NoteRetriedWrite() { b.stats.RetriedWrites++ }

// ResetStats clears the bank's accumulated statistics (end of warmup).
func (b *Bank) ResetStats() { b.stats = BankStats{} }
