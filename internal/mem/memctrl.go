package mem

// DRAMLatency is the main-memory access time of Table 1 (320 cycles at 3GHz).
const DRAMLatency = 320

// MaxOutstandingPerProc is the per-processor limit on in-flight main-memory
// requests (Table 1: "up to 16 outstanding requests for each processor").
const MaxOutstandingPerProc = 16

// MemController models one of the four on-chip memory controllers: a fixed
// DRAM access latency with unlimited bank-level parallelism but a per-
// processor outstanding-request quota.
type MemController struct {
	id       int
	latency  uint64
	quota    int
	inflight []mcEntry
	perProc  map[int]int
	comps    []Completion // Tick's reused result buffer

	stats MCStats
}

type mcEntry struct {
	req  *Request
	done uint64
}

// MCStats aggregates memory-controller activity.
type MCStats struct {
	Reads     uint64
	Writes    uint64
	Rejected  uint64 // enqueue attempts refused because the proc quota was full
	Completed uint64
}

// NewMemController returns a controller with the Table 1 parameters.
func NewMemController(id int) *MemController {
	return &MemController{
		id:      id,
		latency: DRAMLatency,
		quota:   MaxOutstandingPerProc,
		perProc: make(map[int]int),
	}
}

// ID returns the controller's identifier.
func (m *MemController) ID() int { return m.id }

// Stats returns a copy of the controller's statistics.
func (m *MemController) Stats() MCStats { return m.stats }

// Inflight returns the number of requests currently being serviced.
func (m *MemController) Inflight() int { return len(m.inflight) }

// CanAccept reports whether a request from proc would be admitted at now.
func (m *MemController) CanAccept(proc int) bool {
	return m.perProc[proc] < m.quota
}

// Enqueue admits a request at cycle now. It returns false (and counts a
// rejection) when the originating processor already has its quota of
// outstanding requests; the caller must retry later.
func (m *MemController) Enqueue(r *Request, now uint64) bool {
	if !m.CanAccept(r.Proc) {
		m.stats.Rejected++
		return false
	}
	r.Arrive = now
	m.perProc[r.Proc]++
	m.inflight = append(m.inflight, mcEntry{req: r, done: now + m.latency})
	if r.Op == OpWrite {
		m.stats.Writes++
	} else {
		m.stats.Reads++
	}
	return true
}

// Tick returns all requests whose DRAM access finished at cycle now. The
// returned slice is reused by the next Tick; callers consume it immediately.
func (m *MemController) Tick(now uint64) []Completion {
	m.comps = m.comps[:0]
	kept := m.inflight[:0]
	for _, e := range m.inflight {
		if e.done <= now {
			m.perProc[e.req.Proc]--
			if m.perProc[e.req.Proc] == 0 {
				delete(m.perProc, e.req.Proc)
			}
			m.stats.Completed++
			m.comps = append(m.comps, Completion{
				Req:     e.req,
				Done:    now,
				Service: m.latency,
			})
		} else {
			kept = append(kept, e)
		}
	}
	m.inflight = kept
	return m.comps
}

// ResetStats clears the controller's accumulated statistics (end of warmup).
func (m *MemController) ResetStats() { m.stats = MCStats{} }
