package mem

import (
	"fmt"
	"sort"
)

// Profile is a named, registered bank technology: the Tech parameters plus
// the hybrid split (how many banks of a mixed cache use SRAM). A profile is
// the unit the exploration engine sweeps over — selecting one by name fully
// determines the device model of every bank in the stack.
type Profile struct {
	// Name is the registry key ("sram", "sttram", "sttram-rr10", ...).
	Name string
	// Summary is a one-line description for -help listings.
	Summary string
	// Tech is the device model applied to STT-RAM-class banks (or to every
	// bank when HybridSRAMBanks is zero).
	Tech Tech
	// HybridSRAMBanks is the number of banks (from bank 0 upward) replaced by
	// SRAM banks in a hybrid mix; zero means a uniform cache.
	HybridSRAMBanks int
}

// registry holds the built-in profiles. It is populated at init time and
// immutable afterwards, so lookups are safe from any goroutine.
var registry = map[string]Profile{}

func register(p Profile) {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("mem: duplicate profile %q", p.Name))
	}
	registry[p.Name] = p
}

// LookupProfile returns the registered profile with the given name.
func LookupProfile(name string) (Profile, bool) {
	p, ok := registry[name]
	return p, ok
}

// ProfileNames returns every registered profile name, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profiles returns every registered profile, sorted by name.
func Profiles() []Profile {
	names := ProfileNames()
	out := make([]Profile, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// retentionRelaxed derives a retention-relaxed STT-RAM variant: shrinking the
// MTJ's thermal stability factor shortens the write pulse (and its energy) at
// the cost of retention time, following the Smullen et al. (HPCA'11) and
// Jog et al. (DAC'12) volatile-STT-RAM design points. writeCycles is the
// relaxed write service time at 3GHz; energyScale scales the write energy.
func retentionRelaxed(name, summary string, writeCycles uint64, energyScale float64) Profile {
	t := STTRAM
	t.Name = name
	t.WriteCycles = writeCycles
	t.WriteLatencyNS = float64(writeCycles) / 3.0
	t.WriteEnergyNJ = STTRAM.WriteEnergyNJ * energyScale
	return Profile{Name: name, Summary: summary, Tech: t}
}

// SOTRAM is a spin-orbit-torque RAM design point: the three-terminal cell
// separates the read and write paths, so writes are near-SRAM speed and much
// lower energy than STT-RAM, at the cost of a larger cell (lower density)
// than two-terminal STT-RAM.
var SOTRAM = Tech{
	Name:           "SOT-RAM",
	CapacityMB:     2,
	AreaMM2:        3.2,
	ReadEnergyNJ:   0.21,
	WriteEnergyNJ:  0.35,
	LeakagePowerMW: 120.0,
	ReadLatencyNS:  0.85,
	WriteLatencyNS: 2.0,
	ReadCycles:     3,
	WriteCycles:    6,
}

func init() {
	register(Profile{
		Name:    "sram",
		Summary: "Table 2 1MB SRAM bank (baseline)",
		Tech:    SRAM,
	})
	register(Profile{
		Name:    "sttram",
		Summary: "Table 2 4MB STT-RAM bank (33-cycle writes)",
		Tech:    STTRAM,
	})
	register(Profile{
		Name:    "pcram",
		Summary: "phase-change RAM extension point (150-cycle writes)",
		Tech:    PCRAM,
	})
	register(Profile{
		Name:    "sotram",
		Summary: "spin-orbit-torque RAM: near-SRAM writes, 2x SRAM density",
		Tech:    SOTRAM,
	})
	register(retentionRelaxed("sttram-rr20",
		"retention-relaxed STT-RAM, 20-cycle writes (~weeks retention)", 20, 0.80))
	register(retentionRelaxed("sttram-rr10",
		"retention-relaxed STT-RAM, 10-cycle writes (~seconds retention)", 10, 0.55))
	register(Profile{
		Name:            "hybrid16",
		Summary:         "hybrid mix: 16 SRAM banks, rest STT-RAM",
		Tech:            STTRAM,
		HybridSRAMBanks: 16,
	})
	register(Profile{
		Name:            "hybrid32",
		Summary:         "hybrid mix: 32 SRAM banks, rest STT-RAM",
		Tech:            STTRAM,
		HybridSRAMBanks: 32,
	})
}
