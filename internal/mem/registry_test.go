package mem

import (
	"testing"
)

func TestProfileNamesSortedAndStable(t *testing.T) {
	names := ProfileNames()
	if len(names) < 6 {
		t.Fatalf("expected at least 6 registered profiles, got %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, want := range []string{"sram", "sttram", "pcram", "sotram", "sttram-rr10", "sttram-rr20", "hybrid16", "hybrid32"} {
		if _, ok := LookupProfile(want); !ok {
			t.Errorf("profile %q not registered", want)
		}
	}
}

func TestPaperProfilesMatchTable2(t *testing.T) {
	p, ok := LookupProfile("sram")
	if !ok || p.Tech != SRAM {
		t.Fatalf("sram profile does not carry Table 2 SRAM params: %+v", p.Tech)
	}
	q, ok := LookupProfile("sttram")
	if !ok || q.Tech != STTRAM {
		t.Fatalf("sttram profile does not carry Table 2 STT-RAM params: %+v", q.Tech)
	}
	if p.HybridSRAMBanks != 0 || q.HybridSRAMBanks != 0 {
		t.Fatalf("uniform profiles must have zero hybrid banks")
	}
}

func TestRetentionRelaxedVariants(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cycles uint64
	}{{"sttram-rr20", 20}, {"sttram-rr10", 10}} {
		p, ok := LookupProfile(tc.name)
		if !ok {
			t.Fatalf("%s not registered", tc.name)
		}
		if p.Tech.WriteCycles != tc.cycles {
			t.Errorf("%s: write cycles = %d, want %d", tc.name, p.Tech.WriteCycles, tc.cycles)
		}
		if p.Tech.WriteCycles >= STTRAM.WriteCycles {
			t.Errorf("%s: relaxed writes must be faster than baseline STT-RAM", tc.name)
		}
		if p.Tech.WriteEnergyNJ >= STTRAM.WriteEnergyNJ {
			t.Errorf("%s: relaxed writes must cost less energy than baseline", tc.name)
		}
		if p.Tech.ReadCycles != STTRAM.ReadCycles {
			t.Errorf("%s: reads must be unchanged", tc.name)
		}
	}
}

func TestHybridProfiles(t *testing.T) {
	for _, tc := range []struct {
		name  string
		banks int
	}{{"hybrid16", 16}, {"hybrid32", 32}} {
		p, ok := LookupProfile(tc.name)
		if !ok {
			t.Fatalf("%s not registered", tc.name)
		}
		if p.HybridSRAMBanks != tc.banks {
			t.Errorf("%s: hybrid banks = %d, want %d", tc.name, p.HybridSRAMBanks, tc.banks)
		}
		if p.Tech.WriteCycles != STTRAM.WriteCycles {
			t.Errorf("%s: STT-RAM side must carry Table 2 write latency", tc.name)
		}
	}
}

func TestLookupUnknownProfile(t *testing.T) {
	if _, ok := LookupProfile("no-such-profile"); ok {
		t.Fatal("lookup of unknown profile succeeded")
	}
	if _, ok := LookupProfile(""); ok {
		t.Fatal("lookup of empty name succeeded")
	}
}
