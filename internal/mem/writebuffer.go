package mem

// bufEntry is one pending write held in the SRAM write buffer.
type bufEntry struct {
	addr     uint64
	inserted uint64 // cycle the write entered the buffer
}

// WriteBuffer is the per-bank SRAM write buffer of Sun et al. (HPCA'09),
// evaluated as the BUFF-20 baseline in Section 4.4 of the paper. Incoming
// writes complete into the buffer at SRAM speed; the bank drains entries into
// the STT-RAM array during idle periods; reads probe the buffer in parallel
// with the array.
type WriteBuffer struct {
	capacity int
	entries  []bufEntry
	present  map[uint64]int // addr -> count of buffered writes to addr
}

// NewWriteBuffer returns a buffer holding up to capacity pending writes.
// capacity must be positive; NewWriteBuffer panics otherwise, since the
// buffer size is a fixed design parameter.
func NewWriteBuffer(capacity int) *WriteBuffer {
	if capacity <= 0 {
		panic("mem: write buffer capacity must be positive")
	}
	return &WriteBuffer{
		capacity: capacity,
		present:  make(map[uint64]int, capacity),
	}
}

// Capacity returns the configured entry count.
func (w *WriteBuffer) Capacity() int { return w.capacity }

// Len returns the number of buffered writes.
func (w *WriteBuffer) Len() int { return len(w.entries) }

// Empty reports whether the buffer holds no writes.
func (w *WriteBuffer) Empty() bool { return len(w.entries) == 0 }

// Full reports whether the buffer cannot accept another write.
func (w *WriteBuffer) Full() bool { return len(w.entries) >= w.capacity }

// Push appends a write. It panics when full: callers must check Full first
// (the bank falls back to a direct array write in that case).
func (w *WriteBuffer) Push(addr, now uint64) {
	if w.Full() {
		panic("mem: push into full write buffer")
	}
	w.entries = append(w.entries, bufEntry{addr: addr, inserted: now})
	w.present[addr]++
}

// Pop removes and returns the oldest buffered write for draining into the
// array. It returns nil when empty.
func (w *WriteBuffer) Pop() *bufEntry {
	if len(w.entries) == 0 {
		return nil
	}
	e := w.entries[0]
	copy(w.entries, w.entries[1:])
	w.entries = w.entries[:len(w.entries)-1]
	w.decrement(e.addr)
	return &e
}

// Restore returns a popped entry to the head of the buffer after its drain
// was preempted by a read.
func (w *WriteBuffer) Restore(e *bufEntry) {
	w.entries = append([]bufEntry{*e}, w.entries...)
	w.present[e.addr]++
}

// Probe reports whether a write to addr is buffered (a read hit in the
// buffer, served at SRAM speed).
func (w *WriteBuffer) Probe(addr uint64) bool {
	return w.present[addr] > 0
}

func (w *WriteBuffer) decrement(addr uint64) {
	if n := w.present[addr]; n <= 1 {
		delete(w.present, addr)
	} else {
		w.present[addr] = n - 1
	}
}
