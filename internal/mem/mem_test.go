package mem

import (
	"testing"
	"testing/quick"
)

func TestTechTable2Values(t *testing.T) {
	// The Table 2 contract that the whole paper rests on: STT-RAM reads are
	// as fast as SRAM (3 cycles) but writes take 33 cycles — 11x a 3-cycle
	// router hop.
	if SRAM.ReadCycles != 3 || SRAM.WriteCycles != 3 {
		t.Fatalf("SRAM latencies = %d/%d, want 3/3", SRAM.ReadCycles, SRAM.WriteCycles)
	}
	if STTRAM.ReadCycles != 3 || STTRAM.WriteCycles != 33 {
		t.Fatalf("STT-RAM latencies = %d/%d, want 3/33", STTRAM.ReadCycles, STTRAM.WriteCycles)
	}
	if STTRAM.CapacityMB != 4*SRAM.CapacityMB {
		t.Fatalf("STT-RAM capacity = %dMB, want 4x SRAM", STTRAM.CapacityMB)
	}
	if STTRAM.LeakagePowerMW >= SRAM.LeakagePowerMW {
		t.Fatal("STT-RAM leakage should be far below SRAM leakage")
	}
	if STTRAM.WriteEnergyNJ <= STTRAM.ReadEnergyNJ {
		t.Fatal("STT-RAM write energy should exceed read energy")
	}
}

func TestTechAccessors(t *testing.T) {
	if STTRAM.Latency(OpRead) != 3 || STTRAM.Latency(OpWrite) != 33 {
		t.Fatal("Latency(op) mismatch")
	}
	if STTRAM.AccessEnergyNJ(OpWrite) != 0.765 || STTRAM.AccessEnergyNJ(OpRead) != 0.278 {
		t.Fatal("AccessEnergyNJ(op) mismatch")
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String mismatch")
	}
}

// run advances the bank from cycle *now to the first cycle at or after *now
// where a completion is produced, or gives up after limit cycles.
func run(t *testing.T, b *Bank, now *uint64, limit uint64) *Completion {
	t.Helper()
	for end := *now + limit; *now <= end; *now++ {
		if c := b.Tick(*now); c != nil {
			return c
		}
	}
	t.Fatalf("no completion within %d cycles", limit)
	return nil
}

func TestBankReadLatency(t *testing.T) {
	b := NewBank(STTRAM)
	var now uint64
	b.Enqueue(&Request{Op: OpRead, Addr: 0x100, ID: 1}, 0)
	c := run(t, b, &now, 100)
	if c.Req.ID != 1 {
		t.Fatalf("completed ID = %d, want 1", c.Req.ID)
	}
	// Enqueued at 0, service starts at tick 0, finishes 3 cycles later.
	if c.Done != 3 || c.Service != 3 || c.QueueDelay != 0 {
		t.Fatalf("read completion done=%d service=%d queue=%d, want 3/3/0",
			c.Done, c.Service, c.QueueDelay)
	}
}

func TestBankWriteLatencyAndQueueing(t *testing.T) {
	b := NewBank(STTRAM)
	var now uint64
	b.Enqueue(&Request{Op: OpWrite, Addr: 0x100, ID: 1}, 0)
	b.Enqueue(&Request{Op: OpRead, Addr: 0x200, ID: 2}, 0)
	c1 := run(t, b, &now, 100)
	if c1.Req.ID != 1 || c1.Done != 33 {
		t.Fatalf("write done at %d (id %d), want 33 (id 1)", c1.Done, c1.Req.ID)
	}
	c2 := run(t, b, &now, 100)
	if c2.Req.ID != 2 {
		t.Fatalf("second completion id = %d, want 2", c2.Req.ID)
	}
	// The read waited behind the 33-cycle write: queue delay 33.
	if c2.QueueDelay != 33 {
		t.Fatalf("read queue delay = %d, want 33", c2.QueueDelay)
	}
	if c2.Done != 36 {
		t.Fatalf("read done = %d, want 36", c2.Done)
	}
	st := b.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats reads/writes = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	if st.QueuedCycles != 33 {
		t.Fatalf("queued cycles = %d, want 33", st.QueuedCycles)
	}
}

func TestBankBusyWindow(t *testing.T) {
	b := NewBank(STTRAM)
	b.Enqueue(&Request{Op: OpWrite, Addr: 1}, 0)
	b.Tick(0) // starts the write
	if !b.Busy(5) {
		t.Fatal("bank should be busy mid-write")
	}
	if b.BusyUntil() != 33 {
		t.Fatalf("busyUntil = %d, want 33", b.BusyUntil())
	}
	if b.Busy(33) {
		t.Fatal("bank should be free at busyUntil")
	}
}

func TestSRAMBankWriteIsShort(t *testing.T) {
	b := NewBank(SRAM)
	var now uint64
	b.Enqueue(&Request{Op: OpWrite, Addr: 1, ID: 9}, 0)
	c := run(t, b, &now, 50)
	if c.Done != 3 {
		t.Fatalf("SRAM write done = %d, want 3", c.Done)
	}
}

func TestBufferedBankWriteCompletesFast(t *testing.T) {
	b := NewBufferedBank(STTRAM, 20, true)
	var now uint64
	b.Enqueue(&Request{Op: OpWrite, Addr: 0x100, ID: 1}, 0)
	c := run(t, b, &now, 100)
	// 1-cycle detection + SRAM-speed buffer write = 4 cycles, not 33.
	if c.Service != 1+SRAM.WriteCycles {
		t.Fatalf("buffered write service = %d, want %d", c.Service, 1+SRAM.WriteCycles)
	}
}

func TestBufferedBankReadHitsBuffer(t *testing.T) {
	b := NewBufferedBank(STTRAM, 20, false)
	var now uint64
	// Enqueue the read while the write is still queued, so it is serviced
	// before the bank gets an idle cycle to drain the buffer.
	b.Enqueue(&Request{Op: OpWrite, Addr: 0x100, ID: 1}, 0)
	b.Enqueue(&Request{Op: OpRead, Addr: 0x100, ID: 2}, 0)
	run(t, b, &now, 100)
	c := run(t, b, &now, 100)
	if b.Stats().BufferHits != 1 {
		t.Fatalf("buffer hits = %d, want 1", b.Stats().BufferHits)
	}
	if c.Service != 1+SRAM.ReadCycles {
		t.Fatalf("buffer-hit read service = %d, want %d", c.Service, 1+SRAM.ReadCycles)
	}
}

func TestBufferedBankDrainsWhenIdle(t *testing.T) {
	b := NewBufferedBank(STTRAM, 20, false)
	var now uint64
	b.Enqueue(&Request{Op: OpWrite, Addr: 0x100, ID: 1}, 0)
	run(t, b, &now, 100)
	// Let the bank idle long enough to drain the buffered write.
	for ; now < 200; now++ {
		b.Tick(now)
	}
	if b.Stats().DrainedWrites != 1 {
		t.Fatalf("drained writes = %d, want 1", b.Stats().DrainedWrites)
	}
}

func TestReadPreemptionAbortsDrain(t *testing.T) {
	b := NewBufferedBank(STTRAM, 20, true)
	var now uint64
	b.Enqueue(&Request{Op: OpWrite, Addr: 0x100, ID: 1}, 0)
	run(t, b, &now, 100)
	// Advance a little: the bank starts draining the buffered write.
	b.Tick(now)
	if b.draining == nil {
		t.Fatal("expected a drain in flight")
	}
	// A read arrives mid-drain and preempts it.
	b.Enqueue(&Request{Op: OpRead, Addr: 0x900, ID: 2}, now+1)
	if b.Stats().Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", b.Stats().Preemptions)
	}
	now++
	c := run(t, b, &now, 100)
	if c.Req.ID != 2 {
		t.Fatalf("completion id = %d, want the preempting read", c.Req.ID)
	}
	// The aborted write must still be in the system: either back in the
	// buffer or already re-draining after the read finished.
	if b.buf.Len() != 1 && b.draining == nil {
		t.Fatal("aborted write lost after preemption")
	}
	for end := now + 100; now < end; now++ {
		b.Tick(now)
	}
	if b.Stats().DrainedWrites != 1 {
		t.Fatal("preempted write never drained")
	}
}

func TestBufferFullFallsBackToArrayWrite(t *testing.T) {
	b := NewBufferedBank(STTRAM, 2, false)
	var now uint64
	// Fill the 2-entry buffer back-to-back so no idle drain happens between.
	b.Enqueue(&Request{Op: OpWrite, Addr: 1, ID: 1}, 0)
	b.Enqueue(&Request{Op: OpWrite, Addr: 2, ID: 2}, 0)
	b.Enqueue(&Request{Op: OpWrite, Addr: 3, ID: 3}, 0)
	run(t, b, &now, 100)
	run(t, b, &now, 100)
	c3 := run(t, b, &now, 200)
	if c3.Service != 1+STTRAM.WriteCycles {
		t.Fatalf("overflow write service = %d, want %d", c3.Service, 1+STTRAM.WriteCycles)
	}
}

func TestWriteBufferBasics(t *testing.T) {
	w := NewWriteBuffer(2)
	if w.Capacity() != 2 || !w.Empty() || w.Full() {
		t.Fatal("fresh buffer state wrong")
	}
	w.Push(10, 0)
	w.Push(10, 1)
	if !w.Full() || w.Len() != 2 {
		t.Fatal("buffer should be full with 2 entries")
	}
	if !w.Probe(10) || w.Probe(11) {
		t.Fatal("probe mismatch")
	}
	e := w.Pop()
	if e == nil || e.addr != 10 {
		t.Fatal("pop should return oldest entry")
	}
	// Duplicate address still present after popping one of two.
	if !w.Probe(10) {
		t.Fatal("probe should still hit: one duplicate remains")
	}
	w.Pop()
	if w.Probe(10) {
		t.Fatal("probe should miss after both entries drained")
	}
	if w.Pop() != nil {
		t.Fatal("pop on empty buffer should return nil")
	}
}

func TestWriteBufferRestore(t *testing.T) {
	w := NewWriteBuffer(4)
	w.Push(1, 0)
	w.Push(2, 0)
	e := w.Pop()
	w.Restore(e)
	if got := w.Pop().addr; got != 1 {
		t.Fatalf("restored entry not at head: got %d, want 1", got)
	}
}

func TestWriteBufferPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero capacity": func() { NewWriteBuffer(0) },
		"push full": func() {
			w := NewWriteBuffer(1)
			w.Push(1, 0)
			w.Push(2, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMemControllerLatency(t *testing.T) {
	m := NewMemController(0)
	if !m.Enqueue(&Request{Op: OpRead, Proc: 3, ID: 7}, 100) {
		t.Fatal("enqueue rejected unexpectedly")
	}
	for now := uint64(100); now < 100+DRAMLatency; now++ {
		if cs := m.Tick(now); len(cs) != 0 {
			t.Fatalf("completion too early at %d", now)
		}
	}
	cs := m.Tick(100 + DRAMLatency)
	if len(cs) != 1 || cs[0].Req.ID != 7 || cs[0].Service != DRAMLatency {
		t.Fatalf("completion = %+v, want id 7 after %d cycles", cs, DRAMLatency)
	}
	if m.Inflight() != 0 {
		t.Fatal("inflight should be drained")
	}
}

func TestMemControllerQuota(t *testing.T) {
	m := NewMemController(1)
	for i := 0; i < MaxOutstandingPerProc; i++ {
		if !m.Enqueue(&Request{Op: OpRead, Proc: 5}, 0) {
			t.Fatalf("enqueue %d rejected below quota", i)
		}
	}
	if m.CanAccept(5) {
		t.Fatal("CanAccept should be false at quota")
	}
	if m.Enqueue(&Request{Op: OpRead, Proc: 5}, 0) {
		t.Fatal("enqueue above quota should be rejected")
	}
	// A different processor is unaffected.
	if !m.Enqueue(&Request{Op: OpWrite, Proc: 6}, 0) {
		t.Fatal("other processor should be admitted")
	}
	if m.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Stats().Rejected)
	}
	// After completion the quota frees up.
	m.Tick(DRAMLatency)
	if !m.CanAccept(5) {
		t.Fatal("quota should free after completion")
	}
	st := m.Stats()
	if st.Completed != MaxOutstandingPerProc+1 {
		t.Fatalf("completed = %d, want %d", st.Completed, MaxOutstandingPerProc+1)
	}
	if st.Writes != 1 || st.Reads != MaxOutstandingPerProc {
		t.Fatalf("reads/writes = %d/%d", st.Reads, st.Writes)
	}
}

// Property: a bank conserves requests — every enqueued request completes
// exactly once, in arrival order, regardless of the op mix.
func TestBankConservationProperty(t *testing.T) {
	f := func(ops []bool, buffered bool) bool {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		var b *Bank
		if buffered {
			b = NewBufferedBank(STTRAM, 4, true)
		} else {
			b = NewBank(STTRAM)
		}
		for i, isWrite := range ops {
			op := OpRead
			if isWrite {
				op = OpWrite
			}
			b.Enqueue(&Request{Op: op, Addr: uint64(i), ID: uint64(i)}, 0)
		}
		var got []uint64
		for now := uint64(0); now < uint64(len(ops)+1)*40+100; now++ {
			if c := b.Tick(now); c != nil {
				got = append(got, c.Req.ID)
			}
		}
		if len(got) != len(ops) {
			return false
		}
		for i, id := range got {
			if id != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: bank service time never exceeds detection + write latency and is
// always at least 1 cycle.
func TestBankServiceBoundsProperty(t *testing.T) {
	f := func(ops []bool) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 32 {
			ops = ops[:32]
		}
		b := NewBufferedBank(STTRAM, 3, true)
		for i, isWrite := range ops {
			op := OpRead
			if isWrite {
				op = OpWrite
			}
			b.Enqueue(&Request{Op: op, Addr: uint64(i % 4), ID: uint64(i)}, uint64(i))
		}
		maxService := 1 + STTRAM.WriteCycles
		for now := uint64(0); now < uint64(len(ops))*40+100; now++ {
			if c := b.Tick(now); c != nil {
				if c.Service < 1 || c.Service > maxService {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyWriteTermination(t *testing.T) {
	b := NewBank(STTRAM)
	b.EnableEarlyTermination(7)
	var now uint64
	var total uint64
	const n = 50
	for i := 0; i < n; i++ {
		b.Enqueue(&Request{Op: OpWrite, Addr: uint64(i), ID: uint64(i)}, now)
		c := run(t, b, &now, 200)
		if c.Service < 1 || c.Service > STTRAM.WriteCycles {
			t.Fatalf("write %d service %d outside [1, %d]", i, c.Service, STTRAM.WriteCycles)
		}
		// The 40%% floor of the early-termination model.
		if float64(c.Service) < 0.4*float64(STTRAM.WriteCycles)-1 {
			t.Fatalf("write %d service %d below the 40%% floor", i, c.Service)
		}
		total += c.Service
	}
	mean := float64(total) / n
	if mean >= float64(STTRAM.WriteCycles) {
		t.Fatalf("early termination saved nothing (mean %.1f)", mean)
	}
	if b.Stats().EarlyTermSaved == 0 {
		t.Fatal("saved cycles not accounted")
	}
	// Determinism: the same seed reproduces the same service sequence.
	b2 := NewBank(STTRAM)
	b2.EnableEarlyTermination(7)
	var now2, total2 uint64
	for i := 0; i < n; i++ {
		b2.Enqueue(&Request{Op: OpWrite, Addr: uint64(i), ID: uint64(i)}, now2)
		total2 += run(t, b2, &now2, 200).Service
	}
	if total2 != total {
		t.Fatal("early termination not deterministic per seed")
	}
}

func TestEarlyTerminationNoEffectOnReads(t *testing.T) {
	b := NewBank(STTRAM)
	b.EnableEarlyTermination(3)
	var now uint64
	b.Enqueue(&Request{Op: OpRead, Addr: 1, ID: 1}, 0)
	c := run(t, b, &now, 100)
	if c.Service != STTRAM.ReadCycles {
		t.Fatalf("read service %d changed by early termination", c.Service)
	}
}

func TestPCRAMTech(t *testing.T) {
	if PCRAM.WriteCycles <= STTRAM.WriteCycles {
		t.Fatal("PCRAM writes should be longer than STT-RAM writes")
	}
	if PCRAM.CapacityMB <= STTRAM.CapacityMB {
		t.Fatal("PCRAM should be denser than STT-RAM")
	}
}

func TestWithWriteCycles(t *testing.T) {
	tech := STTRAM.WithWriteCycles(99)
	if tech.WriteCycles != 99 {
		t.Fatal("write cycles not overridden")
	}
	if STTRAM.WriteCycles != 33 {
		t.Fatal("WithWriteCycles must not mutate the original")
	}
	if tech.Name == STTRAM.Name {
		t.Fatal("derived tech should be visibly renamed")
	}
}
