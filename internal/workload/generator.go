package workload

import (
	"sttsim/internal/cache"
	"sttsim/internal/cpu"
	"sttsim/internal/noc"
)

// Mode selects the address-space organization.
type Mode int

const (
	// ModeShared is the multi-threaded mode (PARSEC, server workloads): all
	// cores share one address space and a fraction of hot accesses touch a
	// global shared region, exercising the coherence directory.
	ModeShared Mode = iota
	// ModePrivate is the multi-programmed mode (SPEC copies): each core owns
	// a disjoint address space, so there is no sharing.
	ModePrivate
)

// Working-set and burst-model parameters. HotLines is sized so the aggregate
// hot footprint (64 cores x 12K lines x 128B = 96MB) comfortably fits the
// 256MB STT-RAM L2 but overflows the 64MB SRAM L2 by ~1.5x — reproducing the
// capacity benefit that makes read-heavy workloads prefer STT-RAM (Section
// 4.2) without hand-tuning per-benchmark miss rates per technology.
const (
	// HotLinesPerCore is each core's hot working set, in cache lines (a
	// multiple of 64 so it stripes evenly over the banks). 64 cores x 6K
	// lines x 128B = 48MB, which fits even the 64MB SRAM L2; the capacity
	// advantage of the 4x denser STT-RAM is modeled explicitly via the
	// per-technology miss ratio (see sim.MissRatioFor).
	HotLinesPerCore = 6144
	// SharedHotLines is the globally shared hot region in ModeShared.
	SharedHotLines = 12288
	// SharedFraction is the probability a hot access touches the shared
	// region in ModeShared.
	SharedFraction = 0.25
)

// Two-state Markov burst model: in the burst state the core issues memory
// operations at a multiple of its calm rate and concentrates them on a
// single bank (reproducing the consecutive same-bank accesses of Figure 3).
// The calm rate is scaled down so the long-run average still matches the
// Table 3 rates.
const (
	burstFactorHigh = 3.0
	burstEnterHigh  = 0.004
	burstExitHigh   = 0.02

	burstFactorLow = 1.8
	burstEnterLow  = 0.002
	burstExitLow   = 0.025
)

// Generator produces one core's instruction stream from a profile; it
// implements cpu.Generator.
type Generator struct {
	prof Profile
	core int
	mode Mode
	rng  *Rand

	calmRead   float64 // per-instruction probability of an L2 read, calm state
	calmWrite  float64
	burstMul   float64
	enterBurst float64
	exitBurst  float64
	missRatio  float64

	inBurst   bool
	burstBank int
	numBanks  int // bank count burst/bank-pinned addresses target

	hotBase    uint64
	sharedBase uint64
	coldBase   uint64
	coldNext   uint64
}

// NewGenerator builds the stream for one core with the profile's native
// (STT-RAM) miss ratio. Streams with the same (profile, core, seed) are
// identical across runs.
func NewGenerator(prof Profile, core int, mode Mode, seed uint64) *Generator {
	return NewGeneratorMiss(prof, core, mode, seed, prof.MissRatio())
}

// NewGeneratorMiss builds the stream with an explicit miss ratio — the
// simulator uses this to model the smaller SRAM L2's extra capacity misses.
func NewGeneratorMiss(prof Profile, core int, mode Mode, seed uint64, missRatio float64) *Generator {
	return NewGeneratorBanks(prof, core, mode, seed, missRatio, cache.NumBanks)
}

// NewGeneratorBanks builds the stream with an explicit miss ratio and bank
// count (non-default topologies); the default count reproduces
// NewGeneratorMiss's stream exactly.
func NewGeneratorBanks(prof Profile, core int, mode Mode, seed uint64, missRatio float64, numBanks int) *Generator {
	g := &Generator{
		prof:      prof,
		core:      core,
		mode:      mode,
		rng:       NewRand(seed ^ (uint64(core)+1)*0xA24BAED4963EE407),
		missRatio: missRatio,
		numBanks:  numBanks,
	}
	if prof.Bursty {
		g.burstMul = burstFactorHigh
		g.enterBurst = burstEnterHigh
		g.exitBurst = burstExitHigh
	} else {
		g.burstMul = burstFactorLow
		g.enterBurst = burstEnterLow
		g.exitBurst = burstExitLow
	}
	// Long-run burst-state occupancy and the matching calm-rate rescale.
	fb := g.enterBurst / (g.enterBurst + g.exitBurst)
	mean := (1 - fb) + g.burstMul*fb
	g.calmRead = prof.L2RPKI / 1000 / mean
	g.calmWrite = prof.L2WPKI / 1000 / mean

	// Address-space layout (line addresses): per-core hot region, global
	// shared region, and an unbounded cold stream; all disjoint.
	g.hotBase = (uint64(core) + 2) << 32
	g.sharedBase = 1 << 28
	g.coldBase = (uint64(core) + 2) << 44
	if mode == ModePrivate {
		// Keep the shared region unused but still core-private to be safe.
		g.sharedBase = g.hotBase
	}
	return g
}

// Profile returns the generator's benchmark profile.
func (g *Generator) Profile() Profile { return g.prof }

// HotFootprint returns every hot line address this generator can touch, for
// cache prewarming (the paper simulates 50M instructions per core; we warm
// the tags directly instead).
func (g *Generator) HotFootprint() []uint64 {
	return append(g.PrivateFootprint(), g.SharedFootprint()...)
}

// PrivateFootprint is the per-core segment of HotFootprint.
func (g *Generator) PrivateFootprint() []uint64 {
	lines := make([]uint64, 0, HotLinesPerCore)
	for i := uint64(0); i < HotLinesPerCore; i++ {
		lines = append(lines, g.hotBase+i)
	}
	return lines
}

// SharedFootprint is the globally shared segment of HotFootprint — identical
// for every ModeShared generator (and empty in ModePrivate), so cache
// prewarming needs to install it only once, not once per core.
func (g *Generator) SharedFootprint() []uint64 {
	if g.mode != ModeShared {
		return nil
	}
	lines := make([]uint64, 0, SharedHotLines)
	for i := uint64(0); i < SharedHotLines; i++ {
		lines = append(lines, g.sharedBase+i)
	}
	return lines
}

// Next implements cpu.Generator: classify the next instruction and, for L2
// accesses, produce its address.
func (g *Generator) Next() cpu.Access {
	// Markov state transition.
	if g.inBurst {
		if g.rng.Float64() < g.exitBurst {
			g.inBurst = false
		}
	} else if g.rng.Float64() < g.enterBurst {
		g.inBurst = true
		g.burstBank = g.rng.Intn(g.numBanks)
	}
	mul := 1.0
	if g.inBurst {
		mul = g.burstMul
	}
	r := g.rng.Float64()
	pr, pw := g.calmRead*mul, g.calmWrite*mul
	switch {
	case r < pr:
		// Loads head dependence chains: the core serializes on them, which
		// puts memory-bound profiles in the sub-1 IPC regime the paper's
		// 64-core system operates in.
		return cpu.Access{Kind: cpu.AccessRead, Addr: g.readAddress(), Serialize: true}
	case r < pr+pw:
		return cpu.Access{Kind: cpu.AccessWrite, Addr: g.writeAddress()}
	default:
		return cpu.Access{Kind: cpu.AccessNone}
	}
}

// readAddress draws the next L2 read line address: cold (guaranteed miss)
// with the profile's read-miss ratio, otherwise from a hot region. During a
// burst all addresses steer to the burst bank.
func (g *Generator) readAddress() uint64 {
	bank := -1
	if g.inBurst {
		bank = g.burstBank
	}
	if g.rng.Float64() < g.missRatio {
		return g.coldAddr(bank)
	}
	return g.hotOrShared(bank)
}

// writeAddress draws a writeback target: always a resident hot line.
func (g *Generator) writeAddress() uint64 {
	bank := -1
	if g.inBurst {
		bank = g.burstBank
	}
	return g.hotOrShared(bank)
}

func (g *Generator) hotOrShared(bank int) uint64 {
	if g.mode == ModeShared && g.rng.Float64() < SharedFraction {
		return g.hotAddr(g.sharedBase, SharedHotLines, bank)
	}
	return g.hotAddr(g.hotBase, HotLinesPerCore, bank)
}

// hotAddr picks a line in [base, base+lines), optionally pinned to a bank.
func (g *Generator) hotAddr(base uint64, lines int, bank int) uint64 {
	if bank < 0 {
		return cache.AddrOfLine(base + uint64(g.rng.Intn(lines)))
	}
	// Lines congruent to the bank index land in that bank.
	nb := uint64(g.numBanks)
	slot := uint64(g.rng.Intn(lines / g.numBanks))
	line := base + slot*nb
	return cache.AddrOfLine(line + uint64(bank)%nb - line%nb)
}

// coldAddr returns a never-before-seen line, optionally pinned to a bank.
func (g *Generator) coldAddr(bank int) uint64 {
	g.coldNext++
	nb := uint64(g.numBanks)
	line := g.coldBase + g.coldNext*nb
	if bank >= 0 {
		line += uint64(bank) % nb
	} else {
		line += g.rng.Uint64() % nb
	}
	return cache.AddrOfLine(line)
}

// ModeFor returns the natural sharing mode for a suite.
func ModeFor(s Suite) Mode {
	if s == SuiteSPEC {
		return ModePrivate
	}
	return ModeShared
}

// Assignment maps each of the 64 cores to a benchmark profile.
type Assignment struct {
	Name     string
	Profiles [noc.LayerSize]Profile
	Mode     Mode
}

// Homogeneous runs one benchmark on all 64 cores — the paper's setup for
// Figure 6 (multi-threaded apps run 64 threads; SPEC apps run 64 copies).
func Homogeneous(p Profile) Assignment {
	a := Assignment{Name: p.Name, Mode: ModeFor(p.Suite)}
	for i := range a.Profiles {
		a.Profiles[i] = p
	}
	return a
}

// Mix distributes copies of the given profiles round-robin over the cores
// (16 copies each for 4 apps, 8 each for 8 apps, ...). Mixes are always
// multi-programmed.
func Mix(name string, profs []Profile) Assignment {
	a := Assignment{Name: name, Mode: ModePrivate}
	for i := range a.Profiles {
		a.Profiles[i] = profs[i%len(profs)]
	}
	return a
}

// Case1 is the paper's worst case: 16 copies each of four write-intensive
// applications (soplex, cactus, lbm, hmmer).
func Case1() Assignment {
	return Mix("case1", []Profile{
		MustByName("soplex"), MustByName("cactus"),
		MustByName("lbm"), MustByName("hmmer"),
	})
}

// Case2 mixes two bursty write-intensive apps (lbm, hmmer) with two
// read-intensive apps (bzip2, libquantum), 16 copies each.
func Case2() Assignment {
	return Mix("case2", []Profile{
		MustByName("lbm"), MustByName("hmmer"),
		MustByName("bzip2"), MustByName("libqntm"),
	})
}

// Case3 builds the paper's 32 random 8-app mixes: 8 read-intensive mixes, 8
// write-intensive mixes, and 16 mixed-behavior mixes, drawn deterministically
// from the given seed.
func Case3(seed uint64) []Assignment {
	rng := NewRand(seed)
	var readInt, writeInt []Profile
	for _, p := range Profiles {
		if p.ReadIntensive() {
			readInt = append(readInt, p)
		}
		if p.WriteIntensive() {
			writeInt = append(writeInt, p)
		}
	}
	pick := func(pool []Profile, n int) []Profile {
		out := make([]Profile, n)
		for i := range out {
			out[i] = pool[rng.Intn(len(pool))]
		}
		return out
	}
	var mixes []Assignment
	for i := 0; i < 8; i++ {
		mixes = append(mixes, Mix("case3-read", pick(readInt, 8)))
	}
	for i := 0; i < 8; i++ {
		mixes = append(mixes, Mix("case3-write", pick(writeInt, 8)))
	}
	for i := 0; i < 16; i++ {
		mixes = append(mixes, Mix("case3-mixed", pick(Profiles, 8)))
	}
	return mixes
}
