// Package workload reproduces the paper's 42-application workload suite
// from its published characterization (Table 3). Each Profile carries the
// L1/L2 miss and L2 read/write rates per kilo-instruction plus the
// burstiness class; a Generator turns a profile into a deterministic,
// per-core synthetic instruction stream with the same statistics, including
// two-state Markov burst behavior and multi-threaded sharing. This replaces
// the proprietary PARSEC/SPEC/commercial traces the authors used (see
// DESIGN.md, substitution table).
package workload

import "fmt"

// Suite classifies the benchmark's origin, which decides the reporting
// groups of Figure 6 and the sharing mode (multi-threaded suites share an
// address space; SPEC runs as 64 independent copies).
type Suite int

const (
	// SuiteServer is the four commercial server workloads.
	SuiteServer Suite = iota
	// SuitePARSEC is the 13 multi-threaded PARSEC benchmarks.
	SuitePARSEC
	// SuiteSPEC is the 25 SPEC CPU2006 benchmarks (multi-programmed).
	SuiteSPEC
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case SuiteServer:
		return "SERVER"
	case SuitePARSEC:
		return "PARSEC"
	default:
		return "SPEC2006"
	}
}

// Profile is one row of Table 3.
type Profile struct {
	Name   string
	Suite  Suite
	L1MPKI float64 // L1 misses per kilo-instruction
	L2MPKI float64 // L2 misses per kilo-instruction
	L2WPKI float64 // L2 writes per kilo-instruction
	L2RPKI float64 // L2 reads per kilo-instruction
	Bursty bool    // "High" burstiness class
}

// MissRatio is the fraction of L2 *reads* that miss, derived from the
// Table 3 rates and clamped to [0, 1]. L2 writes are L1 writebacks of
// resident lines and are not charged misses (the write-allocate path needs
// no memory fetch).
func (p Profile) MissRatio() float64 {
	if p.L2RPKI <= 0 {
		return 0
	}
	m := p.L2MPKI / p.L2RPKI
	if m > 1 {
		return 1
	}
	return m
}

// L2APKI is the total L2 accesses per kilo-instruction.
func (p Profile) L2APKI() float64 { return p.L2RPKI + p.L2WPKI }

// WriteIntensive reports whether L2 writes dominate reads (the workloads the
// paper's Case-1 worst case is built from are both write-intensive and have
// a high absolute write rate).
func (p Profile) WriteIntensive() bool { return p.L2WPKI > p.L2RPKI }

// ReadIntensive reports whether L2 reads dominate writes by at least 2x.
func (p Profile) ReadIntensive() bool { return p.L2RPKI >= 2*p.L2WPKI }

// Profiles is Table 3, in the paper's order.
var Profiles = []Profile{
	{"tpcc", SuiteServer, 51.47, 6.06, 40.90, 10.57, true},
	{"sjas", SuiteServer, 41.54, 4.48, 35.06, 6.48, true},
	{"sap", SuiteServer, 29.91, 3.84, 23.57, 6.15, true},
	{"sjbb", SuiteServer, 25.52, 7.01, 19.42, 6.09, true},
	{"sclust", SuitePARSEC, 29.28, 8.34, 15.23, 14.05, true},
	{"vips", SuitePARSEC, 13.51, 8.07, 6.61, 6.89, true},
	{"canneal", SuitePARSEC, 12.80, 5.47, 6.52, 6.27, false},
	{"dedup", SuitePARSEC, 12.80, 4.59, 7.42, 5.36, true},
	{"ferret", SuitePARSEC, 11.62, 9.16, 6.39, 5.22, false},
	{"facesim", SuitePARSEC, 10.62, 6.82, 6.15, 4.46, false},
	{"swptns", SuitePARSEC, 5.47, 6.35, 2.46, 3.00, false},
	{"bscls", SuitePARSEC, 5.29, 3.73, 2.80, 2.48, false},
	{"bdtrk", SuitePARSEC, 5.62, 5.71, 2.81, 2.81, false},
	{"rtrce", SuitePARSEC, 5.65, 4.98, 3.62, 2.03, false},
	{"x264", SuitePARSEC, 4.17, 4.62, 1.87, 2.29, false},
	{"fldnmt", SuitePARSEC, 4.89, 4.41, 2.68, 2.20, false},
	{"frqmn", SuitePARSEC, 2.29, 3.96, 1.31, 0.98, false},
	{"gemsfdtd", SuiteSPEC, 104.04, 94.62, 0.80, 103.23, false},
	{"mcf", SuiteSPEC, 99.81, 64.47, 5.45, 94.37, false},
	{"soplex", SuiteSPEC, 48.54, 16.88, 19.59, 28.95, false},
	{"cactus", SuiteSPEC, 43.81, 15.64, 18.65, 25.16, false},
	{"lbm", SuiteSPEC, 36.49, 18.88, 30.76, 5.73, true},
	{"hmmer", SuiteSPEC, 34.36, 3.31, 12.50, 21.86, true},
	{"xalan", SuiteSPEC, 29.70, 21.07, 3.02, 26.68, false},
	{"leslie", SuiteSPEC, 26.09, 18.06, 7.65, 18.45, false},
	{"sphinx3", SuiteSPEC, 25.55, 10.91, 0.97, 24.58, true},
	{"gobmk", SuiteSPEC, 22.81, 8.68, 8.02, 14.79, true},
	{"astar", SuiteSPEC, 20.03, 4.21, 6.11, 13.92, false},
	{"bzip2", SuiteSPEC, 19.29, 10.02, 2.66, 16.63, true},
	{"milc", SuiteSPEC, 19.12, 18.67, 0.05, 19.06, false},
	{"libqntm", SuiteSPEC, 12.50, 12.50, 0.00, 12.50, false},
	{"omnet", SuiteSPEC, 10.92, 10.15, 0.25, 10.67, false},
	{"povray", SuiteSPEC, 9.63, 7.86, 0.88, 8.75, true},
	{"gcc", SuiteSPEC, 9.39, 8.51, 0.06, 9.34, true},
	{"namd", SuiteSPEC, 8.85, 5.11, 0.65, 8.19, true},
	{"gromacs", SuiteSPEC, 5.36, 3.18, 0.32, 5.05, true},
	{"tonto", SuiteSPEC, 5.26, 0.55, 3.52, 1.74, true},
	{"h264", SuiteSPEC, 4.81, 2.74, 2.03, 2.78, true},
	{"dealII", SuiteSPEC, 4.41, 2.36, 0.35, 4.06, true},
	{"sjeng", SuiteSPEC, 3.93, 2.00, 0.92, 3.01, false},
	{"wrf", SuiteSPEC, 1.80, 0.75, 0.88, 0.92, false},
	{"calculix", SuiteSPEC, 0.33, 0.23, 0.03, 0.29, false},
}

// byName indexes Profiles.
var byName = func() map[string]Profile {
	m := make(map[string]Profile, len(Profiles))
	for _, p := range Profiles {
		m[p.Name] = p
	}
	return m
}()

// ByName returns the profile for a benchmark name.
func ByName(name string) (Profile, error) {
	p, ok := byName[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName for static names; it panics on unknown benchmarks.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// BySuite returns all profiles of one suite, in table order.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}
