package workload

// Rand is a splitmix64 PRNG: tiny, fast, and deterministic across runs —
// every core's instruction stream is reproducible from its seed.
type Rand struct {
	s uint64
}

// NewRand seeds a generator. Seed 0 is remapped so the stream is never
// degenerate.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}
