package workload

import (
	"math"
	"testing"
	"testing/quick"

	"sttsim/internal/cache"
	"sttsim/internal/cpu"
	"sttsim/internal/noc"
)

func TestProfilesMatchPaperInventory(t *testing.T) {
	if len(Profiles) != 42 {
		t.Fatalf("Table 3 has 42 rows, got %d", len(Profiles))
	}
	counts := map[Suite]int{}
	for _, p := range Profiles {
		counts[p.Suite]++
	}
	if counts[SuiteServer] != 4 {
		t.Fatalf("server workloads = %d, want 4", counts[SuiteServer])
	}
	if counts[SuitePARSEC] != 13 {
		t.Fatalf("PARSEC workloads = %d, want 13", counts[SuitePARSEC])
	}
	if counts[SuiteSPEC] != 25 {
		t.Fatalf("SPEC workloads = %d, want 25", counts[SuiteSPEC])
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("tpcc")
	if err != nil || p.L2WPKI != 40.90 {
		t.Fatalf("tpcc lookup failed: %v %+v", err, p)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName should panic on unknown name")
		}
	}()
	MustByName("nope")
}

func TestBySuite(t *testing.T) {
	server := BySuite(SuiteServer)
	if len(server) != 4 || server[0].Name != "tpcc" {
		t.Fatalf("BySuite(Server) = %v", server)
	}
	if SuiteServer.String() != "SERVER" || SuitePARSEC.String() != "PARSEC" || SuiteSPEC.String() != "SPEC2006" {
		t.Fatal("suite names wrong")
	}
}

func TestMissRatioDerivation(t *testing.T) {
	// tpcc: 6.06 read misses per 10.57 reads.
	if got := MustByName("tpcc").MissRatio(); math.Abs(got-6.06/10.57) > 1e-9 {
		t.Fatalf("tpcc miss ratio = %f", got)
	}
	// libquantum misses on every read.
	if got := MustByName("libqntm").MissRatio(); got != 1 {
		t.Fatalf("libquantum miss ratio = %f, want 1 (clamped)", got)
	}
	// Zero-read profile is defined as zero.
	p := Profile{L2RPKI: 0, L2MPKI: 5}
	if p.MissRatio() != 0 {
		t.Fatal("zero-read profile should have miss ratio 0")
	}
}

func TestIntensityClassifiers(t *testing.T) {
	if !MustByName("tpcc").WriteIntensive() {
		t.Fatal("tpcc is write-intensive")
	}
	if !MustByName("libqntm").ReadIntensive() {
		t.Fatal("libquantum is read-intensive")
	}
	if MustByName("libqntm").WriteIntensive() {
		t.Fatal("libquantum is not write-intensive")
	}
}

func TestRandDeterminismAndRange(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	r := NewRand(0) // remapped, not degenerate
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		v := r.Uint64()
		if seen[v] {
			t.Fatal("degenerate stream from zero seed")
		}
		seen[v] = true
		f := NewRand(uint64(i + 1)).Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestGeneratorMatchesProfileRates(t *testing.T) {
	for _, name := range []string{"tpcc", "hmmer", "calculix"} {
		prof := MustByName(name)
		g := NewGenerator(prof, 0, ModeFor(prof.Suite), 42)
		const n = 400000
		var reads, writes int
		for i := 0; i < n; i++ {
			switch g.Next().Kind {
			case cpu.AccessRead:
				reads++
			case cpu.AccessWrite:
				writes++
			}
		}
		gotR := float64(reads) / n * 1000
		gotW := float64(writes) / n * 1000
		if math.Abs(gotR-prof.L2RPKI) > 0.25*prof.L2RPKI+0.2 {
			t.Errorf("%s: generated rpki %.2f, want %.2f", name, gotR, prof.L2RPKI)
		}
		if math.Abs(gotW-prof.L2WPKI) > 0.25*prof.L2WPKI+0.2 {
			t.Errorf("%s: generated wpki %.2f, want %.2f", name, gotW, prof.L2WPKI)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	prof := MustByName("lbm")
	a := NewGenerator(prof, 3, ModePrivate, 9)
	b := NewGenerator(prof, 3, ModePrivate, 9)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generator streams diverged for identical seeds")
		}
	}
	// A different core gets a different stream.
	c := NewGenerator(prof, 4, ModePrivate, 9)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 990 {
		t.Fatal("different cores should see different streams")
	}
}

func TestColdAddressesNeverRepeat(t *testing.T) {
	prof := MustByName("libqntm") // 100% read miss: every read is cold
	g := NewGenerator(prof, 0, ModePrivate, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		a := g.Next()
		if a.Kind != cpu.AccessRead {
			continue
		}
		la := cache.LineAddr(a.Addr)
		if seen[la] {
			t.Fatalf("cold line %d repeated", la)
		}
		seen[la] = true
	}
}

func TestPrivateModeAddressesDisjoint(t *testing.T) {
	prof := MustByName("hmmer")
	g0 := NewGenerator(prof, 0, ModePrivate, 5)
	g1 := NewGenerator(prof, 1, ModePrivate, 5)
	lines0 := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		if a := g0.Next(); a.Kind != cpu.AccessNone {
			lines0[cache.LineAddr(a.Addr)] = true
		}
	}
	for i := 0; i < 50000; i++ {
		if a := g1.Next(); a.Kind != cpu.AccessNone {
			if lines0[cache.LineAddr(a.Addr)] {
				t.Fatal("private address spaces overlap across cores")
			}
		}
	}
}

func TestSharedModeTouchesSharedRegion(t *testing.T) {
	prof := MustByName("tpcc")
	g0 := NewGenerator(prof, 0, ModeShared, 5)
	g1 := NewGenerator(prof, 1, ModeShared, 5)
	lines0 := map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		if a := g0.Next(); a.Kind != cpu.AccessNone {
			lines0[cache.LineAddr(a.Addr)] = true
		}
	}
	overlap := 0
	for i := 0; i < 200000; i++ {
		if a := g1.Next(); a.Kind != cpu.AccessNone {
			if lines0[cache.LineAddr(a.Addr)] {
				overlap++
			}
		}
	}
	if overlap == 0 {
		t.Fatal("multi-threaded cores never touched shared lines")
	}
}

func TestBurstSteeringConcentratesOnOneBank(t *testing.T) {
	prof := MustByName("tpcc") // bursty
	g := NewGenerator(prof, 0, ModeShared, 3)
	// Count the longest same-bank run of consecutive accesses.
	longest, run, lastBank := 0, 0, -1
	for i := 0; i < 500000; i++ {
		a := g.Next()
		if a.Kind == cpu.AccessNone {
			continue
		}
		b := cache.HomeBank(a.Addr)
		if b == lastBank {
			run++
		} else {
			run, lastBank = 1, b
		}
		if run > longest {
			longest = run
		}
	}
	if longest < 3 {
		t.Fatalf("bursty app never produced a same-bank run (longest %d)", longest)
	}
}

func TestHotFootprintCoversHotAccesses(t *testing.T) {
	prof := MustByName("hmmer")
	g := NewGeneratorMiss(prof, 2, ModeShared, 11, 0) // no cold accesses
	foot := map[uint64]bool{}
	for _, l := range g.HotFootprint() {
		foot[l] = true
	}
	if len(foot) != HotLinesPerCore+SharedHotLines {
		t.Fatalf("footprint size %d, want %d", len(foot), HotLinesPerCore+SharedHotLines)
	}
	for i := 0; i < 100000; i++ {
		a := g.Next()
		if a.Kind == cpu.AccessNone {
			continue
		}
		if !foot[cache.LineAddr(a.Addr)] {
			t.Fatalf("hot access to line %d outside the declared footprint", cache.LineAddr(a.Addr))
		}
	}
}

func TestAssignments(t *testing.T) {
	h := Homogeneous(MustByName("tpcc"))
	if h.Mode != ModeShared || h.Profiles[63].Name != "tpcc" {
		t.Fatal("homogeneous assignment wrong")
	}
	s := Homogeneous(MustByName("mcf"))
	if s.Mode != ModePrivate {
		t.Fatal("SPEC should be multi-programmed")
	}
	c1 := Case1()
	counts := map[string]int{}
	for _, p := range c1.Profiles {
		counts[p.Name]++
	}
	for _, name := range []string{"soplex", "cactus", "lbm", "hmmer"} {
		if counts[name] != 16 {
			t.Fatalf("Case-1 has %d copies of %s, want 16", counts[name], name)
		}
	}
	c2 := Case2()
	counts = map[string]int{}
	for _, p := range c2.Profiles {
		counts[p.Name]++
	}
	if counts["lbm"] != 16 || counts["bzip2"] != 16 || counts["libqntm"] != 16 || counts["hmmer"] != 16 {
		t.Fatalf("Case-2 composition wrong: %v", counts)
	}
}

func TestCase3Composition(t *testing.T) {
	mixes := Case3(77)
	if len(mixes) != 32 {
		t.Fatalf("Case-3 has %d mixes, want 32", len(mixes))
	}
	kinds := map[string]int{}
	for _, m := range mixes {
		kinds[m.Name]++
		distinct := map[string]bool{}
		for _, p := range m.Profiles {
			distinct[p.Name] = true
		}
		if len(distinct) > 8 {
			t.Fatalf("mix %s has %d distinct apps, want <= 8", m.Name, len(distinct))
		}
	}
	if kinds["case3-read"] != 8 || kinds["case3-write"] != 8 || kinds["case3-mixed"] != 16 {
		t.Fatalf("Case-3 category counts wrong: %v", kinds)
	}
	// Deterministic for a fixed seed.
	again := Case3(77)
	for i := range mixes {
		if mixes[i].Profiles != again[i].Profiles {
			t.Fatal("Case-3 mixes not deterministic")
		}
	}
}

// Property: generated addresses always map to a valid bank, and the home
// node is always a cache-layer node.
func TestGeneratorAddressValidityProperty(t *testing.T) {
	f := func(profIdx, core uint8, shared bool, seed uint64) bool {
		prof := Profiles[int(profIdx)%len(Profiles)]
		mode := ModePrivate
		if shared {
			mode = ModeShared
		}
		g := NewGenerator(prof, int(core)%noc.LayerSize, mode, seed)
		for i := 0; i < 2000; i++ {
			a := g.Next()
			if a.Kind == cpu.AccessNone {
				continue
			}
			hb := cache.HomeBank(a.Addr)
			if hb < 0 || hb >= cache.NumBanks {
				return false
			}
			if cache.HomeNode(a.Addr).Layer() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
