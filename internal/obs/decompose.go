package obs

// The offline latency-decomposition reducer (cmd/nocsim -decompose): given a
// recorded event trace, reconstruct every demand request's end-to-end
// lifecycle — injection, per-router queueing, ejection, bank queueing, bank
// service, memory residual, and the response's way back — as a sequence of
// consecutive stages whose cycle counts telescope exactly to the
// requester-observed round trip. The decomposition property test
// (internal/sim) enforces the exactness for every packet of every scheme.

import (
	"fmt"
	"io"
	"sort"

	"sttsim/internal/noc"
)

// Stage is one consecutive slice of a request's lifetime.
type Stage struct {
	Label  string
	Cycles uint64
}

// RequestDecomp is one demand request's reconstructed lifecycle.
type RequestDecomp struct {
	Req      uint64   // request packet ID
	Kind     noc.Kind // KindReadReq or KindWriteReq
	Inject   uint64   // cycle the request entered its source NIC
	Complete uint64   // cycle the response was delivered back
	Stages   []Stage  // consecutive; cycle counts sum to Complete-Inject
}

// Total returns the end-to-end round trip in cycles.
func (r *RequestDecomp) Total() uint64 { return r.Complete - r.Inject }

// StageSum returns the sum of the per-stage cycle counts; the decomposition
// invariant is StageSum() == Total() for every request.
func (r *RequestDecomp) StageSum() uint64 {
	var sum uint64
	for _, s := range r.Stages {
		sum += s.Cycles
	}
	return sum
}

// Decomposition is the reducer's output over one trace.
type Decomposition struct {
	Requests []RequestDecomp
	// Incomplete counts demand requests whose lifecycle did not finish inside
	// the trace window (no response, or the response was still in flight).
	Incomplete int
	// Faults counts fault/degradation events seen in the trace.
	Faults int
}

// Canonical stage labels, in lifecycle order.
const (
	StageReqNIC      = "req-nic-queue"  // source NIC queueing + injection serialization
	StageReqRouter   = "req-router"     // router buffering, VA/SA arbitration (incl. parent holds)
	StageReqHop      = "req-hop"        // inter-router flight not absorbed by buffering
	StageReqEject    = "req-eject"      // last link + tail reassembly + interface gating
	StageBankQueue   = "bank-queue"     // bank controller queue (incl. write-retry backoff)
	StageBankService = "bank-service"   // array/buffer service time
	StageMemory      = "memory"         // off-chip residual: miss round trip, MSHR merge wait
	StageRespNIC     = "resp-nic-queue" // response-side NIC queueing
	StageRespRouter  = "resp-router"
	StageRespHop     = "resp-hop"
	StageRespEject   = "resp-eject"
)

// stageOrder fixes the rendering order of Summary.
var stageOrder = []string{
	StageReqNIC, StageReqRouter, StageReqHop, StageReqEject,
	StageBankQueue, StageBankService, StageMemory,
	StageRespNIC, StageRespRouter, StageRespHop, StageRespEject,
}

// netStages converts one packet's ordered events (inject, (enqueue, grant)*,
// deliver) into network stages appended to dst. prefix distinguishes the
// request and response legs.
func netStages(dst []Stage, evs []Event, prefix string) ([]Stage, error) {
	if len(evs) < 2 || evs[0].Type != EvInject || evs[len(evs)-1].Type != EvDeliver {
		return nil, fmt.Errorf("obs: packet %d: malformed lifecycle (%d events)", evs[0].Pkt, len(evs))
	}
	prev := evs[0].Cycle
	label := prefix + "-nic-queue"
	for _, ev := range evs[1 : len(evs)-1] {
		if ev.Cycle < prev {
			return nil, fmt.Errorf("obs: packet %d: %s at cycle %d before %d", ev.Pkt, ev.Type, ev.Cycle, prev)
		}
		switch ev.Type {
		case EvEnqueue:
			dst = append(dst, Stage{label, ev.Cycle - prev})
			label = prefix + "-router"
		case EvGrant:
			dst = append(dst, Stage{label, ev.Cycle - prev})
			label = prefix + "-hop"
		default:
			return nil, fmt.Errorf("obs: packet %d: unexpected %s inside lifecycle", ev.Pkt, ev.Type)
		}
		prev = ev.Cycle
	}
	last := evs[len(evs)-1]
	if last.Cycle < prev {
		return nil, fmt.Errorf("obs: packet %d: delivered at %d before %d", last.Pkt, last.Cycle, prev)
	}
	return append(dst, Stage{prefix + "-eject", last.Cycle - prev}), nil
}

// Decompose reduces a trace into per-request latency decompositions.
func Decompose(events []Event) (*Decomposition, error) {
	// Group packet events by ID in file order (the file order is the
	// simulator's deterministic emission order).
	perPkt := make(map[uint64][]Event)
	bankByReq := make(map[uint64][]Event)
	respByReq := make(map[uint64]uint64)
	d := &Decomposition{}
	for _, ev := range events {
		switch ev.Type {
		case EvInject, EvEnqueue, EvGrant, EvDeliver:
			perPkt[ev.Pkt] = append(perPkt[ev.Pkt], ev)
			if ev.Type == EvInject && ev.Req != 0 &&
				(ev.Kind == noc.KindReadResp || ev.Kind == noc.KindWriteAck) {
				if prior, dup := respByReq[ev.Req]; dup {
					return nil, fmt.Errorf("obs: request %d has responses %d and %d", ev.Req, prior, ev.Pkt)
				}
				respByReq[ev.Req] = ev.Pkt
			}
		case EvBankStart, EvBankDone:
			if ev.Req != 0 {
				bankByReq[ev.Req] = append(bankByReq[ev.Req], ev)
			}
		case EvFault:
			d.Faults++
		}
	}

	// Stable request order: by packet ID (== injection order).
	reqIDs := make([]uint64, 0)
	for id, evs := range perPkt {
		if evs[0].Type == EvInject &&
			(evs[0].Kind == noc.KindReadReq || evs[0].Kind == noc.KindWriteReq) {
			reqIDs = append(reqIDs, id)
		}
	}
	sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })

	for _, id := range reqIDs {
		reqEvs := perPkt[id]
		respID, ok := respByReq[id]
		if !ok || reqEvs[len(reqEvs)-1].Type != EvDeliver {
			d.Incomplete++
			continue
		}
		respEvs := perPkt[respID]
		if respEvs[len(respEvs)-1].Type != EvDeliver {
			d.Incomplete++
			continue
		}
		rd := RequestDecomp{Req: id, Kind: reqEvs[0].Kind, Inject: reqEvs[0].Cycle}
		stages, err := netStages(nil, reqEvs, "req")
		if err != nil {
			return nil, err
		}
		// Bank attempts: start/done pairs in emission order. Retried writes
		// contribute one pair per pulse; the inter-attempt backoff lands in
		// bank-queue.
		prev := reqEvs[len(reqEvs)-1].Cycle
		for _, bev := range bankByReq[id] {
			if bev.Cycle < prev {
				return nil, fmt.Errorf("obs: request %d: bank %s at cycle %d before %d", id, bev.Type, bev.Cycle, prev)
			}
			label := StageBankQueue
			if bev.Type == EvBankDone {
				label = StageBankService
			}
			stages = append(stages, Stage{label, bev.Cycle - prev})
			prev = bev.Cycle
		}
		// Off-chip / merge residual up to the response's injection.
		if respEvs[0].Cycle < prev {
			return nil, fmt.Errorf("obs: request %d: response injected at %d before %d", id, respEvs[0].Cycle, prev)
		}
		stages = append(stages, Stage{StageMemory, respEvs[0].Cycle - prev})
		if stages, err = netStages(stages, respEvs, "resp"); err != nil {
			return nil, err
		}
		rd.Stages = stages
		rd.Complete = respEvs[len(respEvs)-1].Cycle
		d.Requests = append(d.Requests, rd)
	}
	return d, nil
}

// StageSummary aggregates one stage label across all completed requests.
type StageSummary struct {
	Label  string
	Cycles uint64 // total cycles spent in this stage
}

// Summary aggregates stage totals in canonical lifecycle order.
func (d *Decomposition) Summary() []StageSummary {
	totals := make(map[string]uint64)
	for _, r := range d.Requests {
		for _, s := range r.Stages {
			totals[s.Label] += s.Cycles
		}
	}
	out := make([]StageSummary, 0, len(stageOrder))
	for _, l := range stageOrder {
		out = append(out, StageSummary{Label: l, Cycles: totals[l]})
	}
	return out
}

// MeanTotal returns the mean end-to-end round trip over completed requests.
func (d *Decomposition) MeanTotal() float64 {
	if len(d.Requests) == 0 {
		return 0
	}
	var sum uint64
	for _, r := range d.Requests {
		sum += r.Total()
	}
	return float64(sum) / float64(len(d.Requests))
}

// PrintSummary renders the paper-style latency-breakdown table.
func PrintSummary(w io.Writer, d *Decomposition) {
	n := len(d.Requests)
	fmt.Fprintf(w, "requests decomposed  %d (%d incomplete at trace end", n, d.Incomplete)
	if d.Faults > 0 {
		fmt.Fprintf(w, ", %d fault events", d.Faults)
	}
	fmt.Fprintln(w, ")")
	if n == 0 {
		return
	}
	mean := d.MeanTotal()
	fmt.Fprintf(w, "mean round trip      %.1f cycles\n", mean)
	fmt.Fprintf(w, "%-15s %12s %10s\n", "stage", "cycles/req", "share")
	for _, s := range d.Summary() {
		per := float64(s.Cycles) / float64(n)
		share := 0.0
		if mean > 0 {
			share = 100 * per / mean
		}
		fmt.Fprintf(w, "%-15s %12.2f %9.1f%%\n", s.Label, per, share)
	}
}
