package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"sttsim/internal/noc"
)

// Sink consumes trace events. Implementations are single-goroutine (the
// simulator is single-threaded); Close flushes any buffering.
type Sink interface {
	Emit(Event) error
	Close() error
}

// FuncSink adapts a function into a Sink — the streaming adapter the serving
// layer (internal/service) uses to forward live progress off a running
// simulation without inventing a new sink type per consumer. Close is a
// no-op; the function owns any downstream flushing.
type FuncSink func(Event) error

// Emit implements Sink.
func (f FuncSink) Emit(ev Event) error { return f(ev) }

// Close implements Sink.
func (f FuncSink) Close() error { return nil }

// MemorySink accumulates events in memory — the test harness's sink.
type MemorySink struct {
	Events []Event
}

// Emit implements Sink.
func (s *MemorySink) Emit(ev Event) error {
	s.Events = append(s.Events, ev)
	return nil
}

// Close implements Sink.
func (s *MemorySink) Close() error { return nil }

// kindByName inverts noc.Kind.String for the JSONL decoder.
var kindByName = func() map[string]noc.Kind {
	m := make(map[string]noc.Kind)
	for k := noc.Kind(0); k < 64; k++ {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			break
		}
		m[s] = k
	}
	return m
}()

// portByName inverts noc.Port.String.
var portByName = func() map[string]noc.Port {
	m := make(map[string]noc.Port)
	for p := noc.Port(0); p < noc.NumPorts; p++ {
		m[p.String()] = p
	}
	return m
}()

// faultByName inverts FaultName.
var faultByName = func() map[string]uint8 {
	m := make(map[string]uint8)
	for c := range faultNames {
		m[faultNames[c]] = uint8(c)
	}
	return m
}()

// JSONLSink writes one compact JSON object per event. The rendering is
// hand-rolled (fixed key order, integers only, absent fields omitted) so a
// given event stream always produces identical bytes — the golden-trace
// determinism tests rely on this.
type JSONLSink struct {
	w *bufio.Writer
	c io.Closer // closed by Close when the target is a file; may be nil
}

// NewJSONLSink buffers writes to w. If w is also an io.Closer it is closed
// by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) error {
	w := s.w
	fmt.Fprintf(w, `{"c":%d,"t":%q`, ev.Cycle, ev.Type.String())
	if ev.Pkt != 0 {
		fmt.Fprintf(w, `,"p":%d`, ev.Pkt)
	}
	if ev.Req != 0 {
		fmt.Fprintf(w, `,"r":%d`, ev.Req)
	}
	if ev.Type == EvFault {
		fmt.Fprintf(w, `,"f":%q`, FaultName(ev.Code))
	} else {
		fmt.Fprintf(w, `,"k":%q`, ev.Kind.String())
	}
	if ev.Node >= 0 {
		fmt.Fprintf(w, `,"n":%d`, ev.Node)
	}
	if ev.Port >= 0 {
		fmt.Fprintf(w, `,"o":%q`, noc.Port(ev.Port).String())
	}
	if ev.A != 0 {
		fmt.Fprintf(w, `,"a":%d`, ev.A)
	}
	if ev.B != 0 {
		fmt.Fprintf(w, `,"b":%d`, ev.B)
	}
	_, err := w.WriteString("}\n")
	return err
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// jsonlEvent is the decoding shape of one JSONL line.
type jsonlEvent struct {
	C uint64  `json:"c"`
	T string  `json:"t"`
	P uint64  `json:"p"`
	R uint64  `json:"r"`
	K *string `json:"k"`
	F *string `json:"f"`
	N *int16  `json:"n"`
	O *string `json:"o"`
	A uint64  `json:"a"`
	B uint64  `json:"b"`
}

// DecodeJSONL parses a JSONL event stream back into events.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		t, ok := eventTypeByName[je.T]
		if !ok {
			return nil, fmt.Errorf("obs: jsonl line %d: unknown event type %q", line, je.T)
		}
		ev := Event{Cycle: je.C, Type: t, Pkt: je.P, Req: je.R, Node: -1, Port: -1, A: je.A, B: je.B}
		if je.K != nil {
			k, ok := kindByName[*je.K]
			if !ok {
				return nil, fmt.Errorf("obs: jsonl line %d: unknown packet kind %q", line, *je.K)
			}
			ev.Kind = k
		}
		if je.F != nil {
			c, ok := faultByName[*je.F]
			if !ok {
				return nil, fmt.Errorf("obs: jsonl line %d: unknown fault code %q", line, *je.F)
			}
			ev.Code = c
		}
		if je.N != nil {
			ev.Node = *je.N
		}
		if je.O != nil {
			p, ok := portByName[*je.O]
			if !ok {
				return nil, fmt.Errorf("obs: jsonl line %d: unknown port %q", line, *je.O)
			}
			ev.Port = int8(p)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl scan: %w", err)
	}
	return out, nil
}
