// Package obs is the packet-lifecycle observability layer: structured event
// tracing (packet lifecycle and fault/degradation events emitted through a
// pluggable sink), a compact binary trace format with a hardened decoder, and
// an offline reducer that reconstructs the paper's latency decomposition
// (queueing vs serialization vs service, Sections 3-4) from a recorded trace.
//
// The layer is strictly zero-cost when disabled: a nil *Tracer is the
// disabled state, every emission site in the simulator guards on it, and no
// event machinery is allocated or consulted on the hot path. Enabling a
// tracer never perturbs simulation outcomes — events are pure observations of
// decisions the simulator already made — so traced and untraced runs of the
// same configuration produce identical Results.
package obs

import (
	"fmt"

	"sttsim/internal/noc"
)

// EventType classifies one trace event.
type EventType uint8

const (
	// EvInject: a packet entered its source NIC queue.
	EvInject EventType = iota
	// EvEnqueue: a packet's header flit was buffered at a router ("parent
	// enqueue" when the router is the packet's parent re-ordering point).
	EvEnqueue
	// EvGrant: a packet's header was granted the switch at a router and is
	// being forwarded through the recorded output port ("parent grant" at the
	// parent router; "TSB arbitrate" when the port is the down TSB/TSV).
	EvGrant
	// EvDeliver: the packet's tail flit was ejected and the packet handed to
	// its destination sink.
	EvDeliver
	// EvBankStart: a cache bank's array began servicing an access.
	EvBankStart
	// EvBankDone: the access completed; A carries the controller-queue delay
	// and B the service time, in cycles.
	EvBankDone
	// EvFault: a fault-injection or graceful-degradation action (Code says
	// which; see the Fault* constants).
	EvFault
	numEventTypes
)

var eventNames = [numEventTypes]string{
	"inject", "enqueue", "grant", "deliver", "bank-start", "bank-done", "fault",
}

// String names the event type.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// eventTypeByName inverts String for the JSONL decoder.
var eventTypeByName = func() map[string]EventType {
	m := make(map[string]EventType, numEventTypes)
	for t := EventType(0); t < numEventTypes; t++ {
		m[eventNames[t]] = t
	}
	return m
}()

// Fault codes carried in Event.Code when Type == EvFault.
const (
	// FaultTSBKilled: a region TSB's down link died; Node is the TSB's
	// core-layer node, A the region index, B the number of regions re-homed.
	FaultTSBKilled uint8 = iota
	// FaultPortDegraded: a router output port was killed or degraded; Node is
	// the router, A the port index, B the duty-cycle period (0 = dead).
	FaultPortDegraded
	// FaultWriteRetry: a stochastic STT-RAM write failure scheduled a
	// re-pulse; Node is the bank node, Req the victim request's packet ID.
	FaultWriteRetry
	// FaultWriteDropped: write retries were exhausted; the line was
	// invalidated (writes) or the fill install abandoned (fills).
	FaultWriteDropped
)

var faultNames = [...]string{"tsb-killed", "port-degraded", "write-retry", "write-dropped"}

// FaultName renders a fault code.
func FaultName(code uint8) string {
	if int(code) < len(faultNames) {
		return faultNames[code]
	}
	return fmt.Sprintf("fault(%d)", code)
}

// Event is one trace record. The fields beyond (Cycle, Type) are populated
// per type; zero values mean "not applicable" except where documented.
type Event struct {
	Cycle uint64
	Type  EventType

	// Pkt is the network-assigned packet ID for packet events; 0 for
	// component events (bank, fault) that are keyed by Req instead.
	Pkt uint64
	// Req links an event back to the originating demand request's packet ID:
	// response packets, bank accesses, and write-fault events carry it so a
	// request's full lifecycle is reconstructible offline.
	Req uint64
	// Kind is the noc packet kind for packet events.
	Kind noc.Kind
	// Code is the fault code for EvFault events.
	Code uint8
	// Node is the component coordinate: router for enqueue/grant, bank node
	// for bank events, fault site for faults; -1 when not applicable.
	Node int16
	// Port is the granted output port for EvGrant; -1 otherwise.
	Port int8
	// A and B are per-type payloads (see the EventType docs).
	A, B uint64
}

// packetEvent fills the common packet-event fields.
func packetEvent(t EventType, p *noc.Packet, now uint64) Event {
	return Event{
		Cycle: now, Type: t, Pkt: p.ID, Req: p.ReqID, Kind: p.Kind,
		Node: -1, Port: -1,
	}
}

// Tracer emits lifecycle events into a Sink. A nil *Tracer is the disabled
// tracer: every method is nil-safe and free of side effects, which is what
// lets the simulator call hooks unconditionally once wired. Errors from the
// sink are sticky: the first one is retained (Err) and later emissions are
// dropped, so a full disk cannot corrupt a trace mid-record.
type Tracer struct {
	sink  Sink
	err   error
	count uint64
}

// NewTracer wraps a sink. A nil sink yields a nil (disabled) tracer.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Events returns the number of events emitted so far.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.count
}

// Err returns the first sink error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Close flushes and closes the sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if cerr := t.sink.Close(); t.err == nil {
		t.err = cerr
	}
	return t.err
}

// Emit records one event.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.err != nil {
		return
	}
	t.count++
	if err := t.sink.Emit(ev); err != nil {
		t.err = err
	}
}

// PacketInjected implements noc.Observer.
func (t *Tracer) PacketInjected(p *noc.Packet, now uint64) {
	t.Emit(packetEvent(EvInject, p, now))
}

// HeaderEnqueued implements noc.Observer.
func (t *Tracer) HeaderEnqueued(at noc.NodeID, p *noc.Packet, now uint64) {
	ev := packetEvent(EvEnqueue, p, now)
	ev.Node = int16(at)
	t.Emit(ev)
}

// HeaderGranted implements noc.Observer.
func (t *Tracer) HeaderGranted(at noc.NodeID, out noc.Port, p *noc.Packet, now uint64) {
	ev := packetEvent(EvGrant, p, now)
	ev.Node = int16(at)
	ev.Port = int8(out)
	t.Emit(ev)
}

// PacketDelivered implements noc.Observer.
func (t *Tracer) PacketDelivered(p *noc.Packet, now uint64) {
	t.Emit(packetEvent(EvDeliver, p, now))
}

// BankAccess records a completed bank access as a start/done event pair
// (the start cycle is reconstructed from the completion, which is when the
// controller learns the access's queue delay and service time).
func (t *Tracer) BankAccess(bank noc.NodeID, req uint64, kind noc.Kind, done, qdelay, service uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Cycle: done - service, Type: EvBankStart, Req: req, Kind: kind,
		Node: int16(bank), Port: -1,
	})
	t.Emit(Event{
		Cycle: done, Type: EvBankDone, Req: req, Kind: kind,
		Node: int16(bank), Port: -1, A: qdelay, B: service,
	})
}

// Fault records a fault-injection or degradation action.
func (t *Tracer) Fault(code uint8, node noc.NodeID, req, a, b, now uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{
		Cycle: now, Type: EvFault, Code: code, Req: req,
		Node: int16(node), Port: -1, A: a, B: b,
	})
}
