package obs

// The compact binary trace format, mirroring internal/trace's format hygiene:
// magic header, varint coding, strict bounds on decode, and a decoder that
// returns errors (never panics) on arbitrary input — it is the subject of
// FuzzDecodeBinary.
//
// Format (little-endian varints):
//
//	magic "STTOBS1\n"
//	per event:
//	  byte   type (0..numEventTypes)
//	  varint cycle delta from the previous event (zigzag; bank-start events
//	         legitimately step backwards)
//	  uvarint pkt, uvarint req
//	  byte   kind-or-code (fault code for EvFault, packet kind otherwise)
//	  uvarint node+1 (0 encodes "none")
//	  uvarint port+1 (0 encodes "none")
//	  uvarint a, uvarint b

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sttsim/internal/noc"
)

var binaryMagic = []byte("STTOBS1\n")

// MaxBinaryEvents bounds how many events DecodeBinary will read, so a
// malicious or corrupt stream cannot exhaust memory.
const MaxBinaryEvents = 1 << 26

// BinarySink writes the compact binary format.
type BinarySink struct {
	w         *bufio.Writer
	c         io.Closer
	prevCycle uint64
	wroteHead bool
}

// NewBinarySink buffers writes to w. If w is also an io.Closer it is closed
// by Close.
func NewBinarySink(w io.Writer) *BinarySink {
	s := &BinarySink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func (s *BinarySink) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := s.w.Write(buf[:n])
	return err
}

func (s *BinarySink) varint(v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := s.w.Write(buf[:n])
	return err
}

// Emit implements Sink.
func (s *BinarySink) Emit(ev Event) error {
	if !s.wroteHead {
		s.wroteHead = true
		if _, err := s.w.Write(binaryMagic); err != nil {
			return err
		}
	}
	if err := s.w.WriteByte(byte(ev.Type)); err != nil {
		return err
	}
	if err := s.varint(int64(ev.Cycle) - int64(s.prevCycle)); err != nil {
		return err
	}
	s.prevCycle = ev.Cycle
	if err := s.uvarint(ev.Pkt); err != nil {
		return err
	}
	if err := s.uvarint(ev.Req); err != nil {
		return err
	}
	kc := byte(ev.Kind)
	if ev.Type == EvFault {
		kc = ev.Code
	}
	if err := s.w.WriteByte(kc); err != nil {
		return err
	}
	if err := s.uvarint(uint64(ev.Node + 1)); err != nil {
		return err
	}
	if err := s.uvarint(uint64(ev.Port + 1)); err != nil {
		return err
	}
	if err := s.uvarint(ev.A); err != nil {
		return err
	}
	return s.uvarint(ev.B)
}

// Close implements Sink. An empty trace still gets its magic so a recorded
// file is always recognizable.
func (s *BinarySink) Close() error {
	var err error
	if !s.wroteHead {
		s.wroteHead = true
		_, err = s.w.Write(binaryMagic)
	}
	if ferr := s.w.Flush(); err == nil {
		err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// IsBinaryTrace reports whether head starts with the binary trace magic.
func IsBinaryTrace(head []byte) bool {
	if len(head) < len(binaryMagic) {
		return false
	}
	for i := range binaryMagic {
		if head[i] != binaryMagic[i] {
			return false
		}
	}
	return true
}

// DecodeBinary reads an entire binary event trace. It is hardened against
// arbitrary input: every field is bounds-checked, truncation is reported with
// the event index, and at most MaxBinaryEvents events are accepted.
func DecodeBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("obs: reading trace magic: %w", err)
	}
	if !IsBinaryTrace(head) {
		return nil, errors.New("obs: bad magic (not a binary event trace)")
	}
	var out []Event
	var prevCycle uint64
	for {
		tb, err := br.ReadByte()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", len(out), err)
		}
		if len(out) >= MaxBinaryEvents {
			return nil, fmt.Errorf("obs: trace exceeds %d events", MaxBinaryEvents)
		}
		if EventType(tb) >= numEventTypes {
			return nil, fmt.Errorf("obs: event %d: unknown event type %d", len(out), tb)
		}
		ev := Event{Type: EventType(tb)}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: cycle: %w", len(out), err)
		}
		cyc := int64(prevCycle) + delta
		if cyc < 0 {
			return nil, fmt.Errorf("obs: event %d: negative cycle", len(out))
		}
		ev.Cycle = uint64(cyc)
		prevCycle = ev.Cycle
		if ev.Pkt, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("obs: event %d: pkt: %w", len(out), err)
		}
		if ev.Req, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("obs: event %d: req: %w", len(out), err)
		}
		kc, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: kind: %w", len(out), err)
		}
		if ev.Type == EvFault {
			if int(kc) >= len(faultNames) {
				return nil, fmt.Errorf("obs: event %d: unknown fault code %d", len(out), kc)
			}
			ev.Code = kc
		} else {
			if _, ok := kindByName[noc.Kind(kc).String()]; !ok {
				return nil, fmt.Errorf("obs: event %d: unknown packet kind %d", len(out), kc)
			}
			ev.Kind = noc.Kind(kc)
		}
		node, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: node: %w", len(out), err)
		}
		if node > uint64(noc.MaxTopologyNodes) {
			return nil, fmt.Errorf("obs: event %d: node %d out of range", len(out), node)
		}
		ev.Node = int16(node) - 1
		port, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("obs: event %d: port: %w", len(out), err)
		}
		if port > uint64(noc.NumPorts) {
			return nil, fmt.Errorf("obs: event %d: port %d out of range", len(out), port)
		}
		ev.Port = int8(port) - 1
		if ev.A, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("obs: event %d: a: %w", len(out), err)
		}
		if ev.B, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("obs: event %d: b: %w", len(out), err)
		}
		out = append(out, ev)
	}
}

// ReadTrace loads a trace in either format, sniffing the binary magic.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	if IsBinaryTrace(head) {
		return DecodeBinary(br)
	}
	return DecodeJSONL(br)
}
