package obs

import (
	"bytes"
	"reflect"
	"testing"

	"sttsim/internal/noc"
)

// FuzzDecodeBinary hardens the binary trace decoder against arbitrary input:
// it must never panic, and anything it accepts must re-encode to the same
// byte stream (canonical round trip).
func FuzzDecodeBinary(f *testing.F) {
	// Seed with an empty trace and a representative encoded stream.
	var empty bytes.Buffer
	NewBinarySink(&empty).Close()
	f.Add(empty.Bytes())

	var full bytes.Buffer
	sink := NewBinarySink(&full)
	for _, ev := range sampleEvents() {
		sink.Emit(ev)
	}
	sink.Close()
	f.Add(full.Bytes())

	// Truncated and mutated variants.
	f.Add(full.Bytes()[:len(full.Bytes())/2])
	mut := append([]byte{}, full.Bytes()...)
	mut[len(binaryMagic)] = 0xEE
	f.Add(mut)
	f.Add([]byte("STTOBS1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip canonically.
		var buf bytes.Buffer
		s := NewBinarySink(&buf)
		for _, ev := range evs {
			if ev.Type >= numEventTypes {
				t.Fatalf("decoder admitted bad type %d", ev.Type)
			}
			if ev.Node < -1 || ev.Node >= int16(noc.MaxTopologyNodes) {
				t.Fatalf("decoder admitted bad node %d", ev.Node)
			}
			if ev.Port < -1 || ev.Port >= int8(noc.NumPorts) {
				t.Fatalf("decoder admitted bad port %d", ev.Port)
			}
			s.Emit(ev)
		}
		s.Close()
		got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(got, evs) {
			t.Fatal("canonical round trip mismatch")
		}
	})
}
