package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sttsim/internal/noc"
)

// sampleEvents exercises every event type, both payload fields, a backwards
// cycle step (bank-start), and the node/port "none" encodings.
func sampleEvents() []Event {
	return []Event{
		{Cycle: 5, Type: EvInject, Pkt: 1, Kind: noc.KindReadReq, Node: -1, Port: -1},
		{Cycle: 6, Type: EvEnqueue, Pkt: 1, Kind: noc.KindReadReq, Node: 3, Port: -1},
		{Cycle: 9, Type: EvGrant, Pkt: 1, Kind: noc.KindReadReq, Node: 3, Port: int8(noc.PortDown)},
		{Cycle: 14, Type: EvDeliver, Pkt: 1, Kind: noc.KindReadReq, Node: -1, Port: -1},
		{Cycle: 17, Type: EvBankStart, Req: 1, Kind: noc.KindReadReq, Node: 70, Port: -1},
		{Cycle: 20, Type: EvBankDone, Req: 1, Kind: noc.KindReadReq, Node: 70, Port: -1, A: 3, B: 3},
		{Cycle: 18, Type: EvBankStart, Req: 2, Kind: noc.KindWriteReq, Node: 71, Port: -1},
		{Cycle: 51, Type: EvBankDone, Req: 2, Kind: noc.KindWriteReq, Node: 71, Port: -1, A: 0, B: 33},
		{Cycle: 21, Type: EvInject, Pkt: 9, Req: 1, Kind: noc.KindReadResp, Node: -1, Port: -1},
		{Cycle: 30, Type: EvDeliver, Pkt: 9, Req: 1, Kind: noc.KindReadResp, Node: -1, Port: -1},
		{Cycle: 40, Type: EvFault, Code: FaultTSBKilled, Node: 12, Port: -1, A: 3, B: 2},
		{Cycle: 41, Type: EvFault, Code: FaultWriteRetry, Req: 2, Node: 71, Port: -1, A: 1},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, ev := range evs {
		if err := sink.Emit(ev); err != nil {
			t.Fatalf("emit: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("jsonl round trip mismatch:\n got %+v\nwant %+v", got, evs)
	}
	// The rendering must be deterministic byte-for-byte.
	var buf2 bytes.Buffer
	sink2 := NewJSONLSink(&buf2)
	for _, ev := range evs {
		sink2.Emit(ev)
	}
	sink2.Close()
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("jsonl rendering is not deterministic")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	for _, ev := range evs {
		if err := sink.Emit(ev); err != nil {
			t.Fatalf("emit: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !IsBinaryTrace(buf.Bytes()) {
		t.Fatal("binary trace missing magic")
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("binary round trip mismatch:\n got %+v\nwant %+v", got, evs)
	}
}

func TestReadTraceSniffsFormat(t *testing.T) {
	evs := sampleEvents()
	for _, mk := range []func(io_ *bytes.Buffer) Sink{
		func(b *bytes.Buffer) Sink { return NewJSONLSink(b) },
		func(b *bytes.Buffer) Sink { return NewBinarySink(b) },
	} {
		var buf bytes.Buffer
		sink := mk(&buf)
		for _, ev := range evs {
			sink.Emit(ev)
		}
		sink.Close()
		got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadTrace: %v", err)
		}
		if !reflect.DeepEqual(got, evs) {
			t.Fatal("ReadTrace mismatch")
		}
	}
}

func TestEmptyBinaryTraceHasMagic(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	evs, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(evs) != 0 {
		t.Fatalf("empty trace decoded %d events", len(evs))
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	for _, ev := range sampleEvents() {
		sink.Emit(ev)
	}
	sink.Close()
	valid := buf.Bytes()

	if _, err := DecodeBinary(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncations must error, never panic.
	for cut := len(validMagicPrefix(valid)); cut < len(valid); cut++ {
		if _, err := DecodeBinary(bytes.NewReader(valid[:cut])); err == nil &&
			cut != expectedEventBoundary(valid, cut) {
			// Cuts on an exact event boundary decode the prefix cleanly; any
			// other cut must report an error.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A bogus event type byte right after the magic.
	bad := append(append([]byte{}, binaryMagic...), 0xFF)
	if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bogus event type accepted")
	}
}

// validMagicPrefix / expectedEventBoundary keep the truncation loop honest:
// we only demand an error when the cut is not a clean event boundary.
func validMagicPrefix(b []byte) []byte { return b[:len(binaryMagic)] }

func expectedEventBoundary(valid []byte, cut int) int {
	evs, err := DecodeBinary(bytes.NewReader(valid[:cut]))
	if err != nil {
		return -1
	}
	// Re-encode the decoded prefix; a clean boundary reproduces the cut.
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	for _, ev := range evs {
		s.Emit(ev)
	}
	s.Close()
	if buf.Len() == cut {
		return cut
	}
	return -1
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	p := &noc.Packet{ID: 1, Kind: noc.KindReadReq}
	tr.PacketInjected(p, 1)
	tr.HeaderEnqueued(3, p, 2)
	tr.HeaderGranted(3, noc.PortDown, p, 3)
	tr.PacketDelivered(p, 4)
	tr.BankAccess(70, 1, noc.KindReadReq, 20, 3, 3)
	tr.Fault(FaultTSBKilled, 12, 0, 0, 0, 5)
	tr.Emit(Event{})
	if tr.Events() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Fatal("nil tracer has state")
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should be nil")
	}
}

func TestTracerStickyError(t *testing.T) {
	sink := &failingSink{failAfter: 2}
	tr := NewTracer(sink)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	if tr.Err() == nil {
		t.Fatal("sink error not surfaced")
	}
	if sink.emits > 3 {
		t.Fatalf("emissions continued after error: %d", sink.emits)
	}
}

type failingSink struct {
	failAfter int
	emits     int
}

func (s *failingSink) Emit(Event) error {
	s.emits++
	if s.emits > s.failAfter {
		return errFail
	}
	return nil
}
func (s *failingSink) Close() error { return nil }

var errFail = &trailerError{"sink full"}

type trailerError struct{ msg string }

func (e *trailerError) Error() string { return e.msg }

// syntheticLifecycle builds a two-hop read with a bank access and response,
// with known per-stage cycle counts.
func syntheticLifecycle() []Event {
	return []Event{
		// Request packet 1: inject@100, enqueue@102 (nic 2), grant@105
		// (router 3), enqueue@105 (hop 0), grant@107 (router 2), deliver@110
		// (eject 3).
		{Cycle: 100, Type: EvInject, Pkt: 1, Kind: noc.KindReadReq, Node: -1, Port: -1},
		{Cycle: 102, Type: EvEnqueue, Pkt: 1, Kind: noc.KindReadReq, Node: 4, Port: -1},
		{Cycle: 105, Type: EvGrant, Pkt: 1, Kind: noc.KindReadReq, Node: 4, Port: int8(noc.PortEast)},
		{Cycle: 105, Type: EvEnqueue, Pkt: 1, Kind: noc.KindReadReq, Node: 5, Port: -1},
		{Cycle: 107, Type: EvGrant, Pkt: 1, Kind: noc.KindReadReq, Node: 5, Port: int8(noc.PortDown)},
		{Cycle: 110, Type: EvDeliver, Pkt: 1, Kind: noc.KindReadReq, Node: -1, Port: -1},
		// Bank: queue 4 (110→114), service 3 (114→117).
		{Cycle: 114, Type: EvBankStart, Req: 1, Kind: noc.KindReadReq, Node: 69, Port: -1},
		{Cycle: 117, Type: EvBankDone, Req: 1, Kind: noc.KindReadReq, Node: 69, Port: -1, A: 4, B: 3},
		// Response packet 7: memory residual 1 (117→118), then net back.
		{Cycle: 118, Type: EvInject, Pkt: 7, Req: 1, Kind: noc.KindReadResp, Node: -1, Port: -1},
		{Cycle: 119, Type: EvEnqueue, Pkt: 7, Req: 1, Kind: noc.KindReadResp, Node: 69, Port: -1},
		{Cycle: 121, Type: EvGrant, Pkt: 7, Req: 1, Kind: noc.KindReadResp, Node: 69, Port: int8(noc.PortUp)},
		{Cycle: 125, Type: EvDeliver, Pkt: 7, Req: 1, Kind: noc.KindReadResp, Node: -1, Port: -1},
	}
}

func TestDecomposeSynthetic(t *testing.T) {
	d, err := Decompose(syntheticLifecycle())
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	if len(d.Requests) != 1 || d.Incomplete != 0 {
		t.Fatalf("got %d requests, %d incomplete", len(d.Requests), d.Incomplete)
	}
	r := d.Requests[0]
	if r.Req != 1 || r.Inject != 100 || r.Complete != 125 {
		t.Fatalf("bad request bounds: %+v", r)
	}
	if r.Total() != 25 || r.StageSum() != 25 {
		t.Fatalf("telescoping broken: total %d, stage sum %d", r.Total(), r.StageSum())
	}
	want := map[string]uint64{
		StageReqNIC: 2, StageReqRouter: 3 + 2, StageReqHop: 0, StageReqEject: 3,
		StageBankQueue: 4, StageBankService: 3, StageMemory: 1,
		StageRespNIC: 1, StageRespRouter: 2, StageRespEject: 4,
	}
	got := make(map[string]uint64)
	for _, s := range r.Stages {
		got[s.Label] += s.Cycles
	}
	for label, cyc := range want {
		if got[label] != cyc {
			t.Errorf("stage %s: got %d, want %d", label, got[label], cyc)
		}
	}
	sum := d.Summary()
	if len(sum) != len(stageOrder) {
		t.Fatalf("summary has %d rows", len(sum))
	}
	var total uint64
	for _, s := range sum {
		total += s.Cycles
	}
	if total != 25 {
		t.Fatalf("summary total %d, want 25", total)
	}
	var out strings.Builder
	PrintSummary(&out, d)
	if !strings.Contains(out.String(), "bank-service") {
		t.Fatal("summary table missing stage rows")
	}
}

func TestDecomposeIncomplete(t *testing.T) {
	evs := syntheticLifecycle()
	// Drop the response delivery: request must be counted incomplete.
	d, err := Decompose(evs[:len(evs)-1])
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	if len(d.Requests) != 0 || d.Incomplete != 1 {
		t.Fatalf("got %d requests, %d incomplete", len(d.Requests), d.Incomplete)
	}
	// A lone request with no response at all.
	d, err = Decompose(evs[:6])
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	if d.Incomplete != 1 {
		t.Fatalf("no-response request not counted: %+v", d)
	}
}

func TestDecomposeRejectsInconsistency(t *testing.T) {
	evs := syntheticLifecycle()
	bad := make([]Event, len(evs))
	copy(bad, evs)
	bad[8].Cycle = 90 // response injected before the bank finished
	if _, err := Decompose(bad); err == nil {
		t.Fatal("inconsistent chain accepted")
	}
}
