package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sttsim/internal/cache"
	"sttsim/internal/cpu"
	"sttsim/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	prof := workload.MustByName("tpcc")
	gen := workload.NewGenerator(prof, 3, workload.ModeShared, 42)
	var buf bytes.Buffer
	const n = 50000
	if err := Record(gen, n, &buf, Meta{Name: "tpcc", Core: 3, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("loaded %d events, want %d", tr.Len(), n)
	}
	if tr.Meta.Name != "tpcc" || tr.Meta.Core != 3 || tr.Meta.Seed != 42 {
		t.Fatalf("meta mismatch: %+v", tr.Meta)
	}
	// The replayed stream must equal a fresh generator with the same seed.
	ref := workload.NewGenerator(prof, 3, workload.ModeShared, 42)
	p := NewPlayer(tr)
	for i := 0; i < n; i++ {
		want := ref.Next()
		// Addresses are stored at line granularity.
		want.Addr = cache.AddrOfLine(cache.LineAddr(want.Addr))
		if got := p.Next(); got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	// Consuming exactly n events wraps the player once (it is positioned at
	// the start again).
	if p.Loops != 1 {
		t.Fatalf("loops = %d after one full pass, want 1", p.Loops)
	}
	for i := 0; i < n; i++ {
		p.Next()
	}
	if p.Loops != 2 {
		t.Fatalf("loops = %d after two full passes, want 2", p.Loops)
	}
}

func TestCompressionOfIdleRuns(t *testing.T) {
	// A stream of pure non-memory instructions must RLE down to a few bytes.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "idle", Count: 100000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if err := w.Append(cpu.Access{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 64 {
		t.Fatalf("idle trace took %d bytes; RLE broken", buf.Len())
	}
	tr, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100000 {
		t.Fatalf("loaded %d, want 100000", tr.Len())
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Name: "x", Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(cpu.Access{})
	if err := w.Close(); err == nil {
		t.Fatal("expected count mismatch error")
	}
	if err := w.Append(cpu.Access{}); err == nil {
		t.Fatal("expected append-after-close error")
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a trace")); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("expected error on empty input")
	}
	// Truncated after the header.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Meta{Name: "t", Count: 10})
	w.Append(cpu.Access{Kind: cpu.AccessRead, Addr: 0x1000})
	w.w.Flush()
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEmptyPlayer(t *testing.T) {
	p := NewPlayer(&Trace{})
	if got := p.Next(); got.Kind != cpu.AccessNone {
		t.Fatal("empty trace should replay as idle")
	}
}

// Property: any access sequence round-trips exactly (at line granularity).
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var events []cpu.Access
		for _, v := range raw {
			switch v % 5 {
			case 0:
				events = append(events, cpu.Access{Kind: cpu.AccessRead,
					Addr: cache.AddrOfLine(uint64(v)), Serialize: v%2 == 0})
			case 1:
				events = append(events, cpu.Access{Kind: cpu.AccessWrite,
					Addr: cache.AddrOfLine(uint64(v) * 977)})
			default:
				events = append(events, cpu.Access{})
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Meta{Name: "prop", Count: uint64(len(events))})
		if err != nil {
			return false
		}
		for _, e := range events {
			if err := w.Append(e); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		tr, err := Load(&buf)
		if err != nil || tr.Len() != len(events) {
			return false
		}
		p := NewPlayer(tr)
		for _, want := range events {
			if p.Next() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsUnknownEventKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Meta{Name: "k", Count: 1})
	w.Append(cpu.Access{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 99 // corrupt the event kind
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestLoadRejectsOverlongRun(t *testing.T) {
	// Hand-craft a trace whose RLE run exceeds the declared count.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Meta{Name: "r", Count: 2})
	w.Append(cpu.Access{})
	w.Append(cpu.Access{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 200 // inflate the run length byte (varint 200 needs 2 bytes; 200>0x7f)
	// A clean way: declare count 2 but write a run of 3.
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2, Meta{Name: "r", Count: 2})
	for i := 0; i < 3; i++ {
		w2.Append(cpu.Access{})
	}
	w2.flushNoneRun()
	w2.w.Flush()
	if _, err := Load(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("expected run-overflow error")
	}
	_ = raw
}

func TestLoadRejectsHugeName(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic)
	// Varint name length of 1MB.
	buf.Write([]byte{0x80, 0x80, 0x40})
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected implausible-name-length error")
	}
}
