// Package trace records and replays per-core instruction streams in a
// compact binary format. The paper drives its simulator from traces of 50M+
// instructions per core; this package provides the equivalent capability for
// our synthetic streams — capture a workload.Generator's output once, then
// replay it bit-identically (and loop it) in any number of runs, including
// across configurations that must see identical inputs.
//
// Format (little-endian, varint-coded):
//
//	magic "STTRC1\n"
//	uvarint len(name), name bytes
//	uvarint core, uvarint seed, uvarint count
//	count events:
//	  byte kind (0 none, 1 read, 2 serializing read, 3 write)
//	  for memory events: uvarint line address
//
// Runs of consecutive non-memory instructions are run-length encoded as
// kind 4 followed by the run length.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sttsim/internal/cache"
	"sttsim/internal/cpu"
)

var magic = []byte("STTRC1\n")

// Event kinds on the wire.
const (
	evNone    = 0
	evRead    = 1
	evReadSer = 2
	evWrite   = 3
	evNoneRun = 4
)

// Meta describes a recorded stream.
type Meta struct {
	Name  string // benchmark name
	Core  int
	Seed  uint64
	Count uint64 // number of instructions recorded
}

// Writer streams events to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	meta    Meta
	noneRun uint64
	count   uint64
	closed  bool
}

// NewWriter writes the header for a stream with the given metadata. The
// final instruction count is written by Close, so the writer requires a
// seekless accumulation: Count in the header is filled with the declared
// count from meta and validated on Close.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(meta.Name))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(meta.Name); err != nil {
		return nil, err
	}
	for _, v := range []uint64{uint64(meta.Core), meta.Seed, meta.Count} {
		if err := writeUvarint(v); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw, meta: meta}, nil
}

func (w *Writer) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.w.Write(buf[:n])
	return err
}

// Append records one instruction.
func (w *Writer) Append(a cpu.Access) error {
	if w.closed {
		return errors.New("trace: append after Close")
	}
	w.count++
	if a.Kind == cpu.AccessNone {
		w.noneRun++
		return nil
	}
	if err := w.flushNoneRun(); err != nil {
		return err
	}
	kind := byte(evWrite)
	if a.Kind == cpu.AccessRead {
		kind = evRead
		if a.Serialize {
			kind = evReadSer
		}
	}
	if err := w.w.WriteByte(kind); err != nil {
		return err
	}
	return w.uvarint(cache.LineAddr(a.Addr))
}

func (w *Writer) flushNoneRun() error {
	switch {
	case w.noneRun == 0:
		return nil
	case w.noneRun == 1:
		w.noneRun = 0
		return w.w.WriteByte(evNone)
	default:
		run := w.noneRun
		w.noneRun = 0
		if err := w.w.WriteByte(evNoneRun); err != nil {
			return err
		}
		return w.uvarint(run)
	}
}

// Close flushes the stream and validates the declared count.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushNoneRun(); err != nil {
		return err
	}
	if w.meta.Count != 0 && w.meta.Count != w.count {
		return fmt.Errorf("trace: declared %d instructions, wrote %d", w.meta.Count, w.count)
	}
	return w.w.Flush()
}

// Record captures n instructions from a generator.
func Record(gen cpu.Generator, n uint64, out io.Writer, meta Meta) error {
	meta.Count = n
	w, err := NewWriter(out, meta)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := w.Append(gen.Next()); err != nil {
			return err
		}
	}
	return w.Close()
}

// Trace is a fully loaded stream.
type Trace struct {
	Meta   Meta
	events []cpu.Access
}

// Load reads an entire recorded stream into memory.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	for i := range magic {
		if head[i] != magic[i] {
			return nil, errors.New("trace: bad magic (not a trace file)")
		}
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, errors.New("trace: implausible name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var hdr [3]uint64
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	t := &Trace{Meta: Meta{Name: string(name), Core: int(hdr[0]), Seed: hdr[1], Count: hdr[2]}}
	t.events = make([]cpu.Access, 0, t.Meta.Count)
	for uint64(len(t.events)) < t.Meta.Count {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated after %d events: %w", len(t.events), err)
		}
		switch kind {
		case evNone:
			t.events = append(t.events, cpu.Access{})
		case evNoneRun:
			run, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if uint64(len(t.events))+run > t.Meta.Count {
				return nil, errors.New("trace: run overflows declared count")
			}
			for j := uint64(0); j < run; j++ {
				t.events = append(t.events, cpu.Access{})
			}
		case evRead, evReadSer, evWrite:
			line, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			a := cpu.Access{Addr: cache.AddrOfLine(line)}
			if kind == evWrite {
				a.Kind = cpu.AccessWrite
			} else {
				a.Kind = cpu.AccessRead
				a.Serialize = kind == evReadSer
			}
			t.events = append(t.events, a)
		default:
			return nil, fmt.Errorf("trace: unknown event kind %d", kind)
		}
	}
	return t, nil
}

// Len returns the number of recorded instructions.
func (t *Trace) Len() int { return len(t.events) }

// Player replays a trace as a cpu.Generator, looping when it runs out (the
// usual trace-driven-simulation convention for steady-state measurement).
type Player struct {
	t   *Trace
	pos int
	// Loops counts how many times the trace wrapped around.
	Loops int
}

// NewPlayer builds a looping replayer.
func NewPlayer(t *Trace) *Player { return &Player{t: t} }

// Next implements cpu.Generator.
func (p *Player) Next() cpu.Access {
	if len(p.t.events) == 0 {
		return cpu.Access{}
	}
	a := p.t.events[p.pos]
	p.pos++
	if p.pos == len(p.t.events) {
		p.pos = 0
		p.Loops++
	}
	return a
}
