#!/usr/bin/env bash
# sttsimd crash-recovery smoke test: kill -9 a coordinator mid-lease and
# require the write-ahead lease record plus -resume to carry the job across
# the crash. This is the one end-to-end scenario the Go functional suite
# (tests/functional, run via `make functional`) cannot express cleanly — an
# unclean SIGKILL with no shutdown path — so it stays a shell script. The
# standalone and distributed happy paths that used to live here are now
# black-box tests in tests/functional driven through the pkg/sttsim client.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
addr="127.0.0.1:${STTSIMD_SMOKE_PORT:-18734}"
base="http://$addr"
pid=""
worker_pids=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    for wp in $worker_pids; do kill "$wp" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

json_field() { # json_field <key> — first string value of "key" on stdin
    sed -n "s/.*\"$1\":\"\([^\"]*\)\".*/\1/p" | head -n1
}

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -sf "$base/v1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "smoke: daemon never became healthy" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "smoke: daemon exited non-zero on SIGTERM" >&2
        exit 1
    fi
    pid=""
}

echo "smoke: build" >&2
go build -o "$tmp/sttsimd" ./cmd/sttsimd

# The write-ahead lease record plus -resume must carry a job across a
# coordinator that vanishes without any shutdown path running.

echo "smoke: start coordinator (-journal-sync always)" >&2
crash_spec='{"scheme":"stt4","bench":"milc","seed":13,"warmup_cycles":20000,"measure_cycles":400000}'
crash_journal="$tmp/journal-crash.jsonl"
"$tmp/sttsimd" -mode coordinator -addr "$addr" \
    -checkpoint "$crash_journal" -lease-timeout 5s -journal-sync always \
    >"$tmp/coordinator-crash.log" 2>&1 &
pid=$!
wait_healthy
for wid in w1 w2; do
    "$tmp/sttsimd" -mode worker -coordinator "$base" -worker-id "$wid" \
        -heartbeat-interval 500ms >"$tmp/$wid.log" 2>&1 &
    worker_pids="$worker_pids $!"
done
for _ in $(seq 1 100); do
    ready_code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/healthz/ready")
    [ "$ready_code" = 200 ] && break
    sleep 0.1
done
[ "$ready_code" = 200 ] || { echo "smoke: coordinator never ready" >&2; exit 1; }

echo "smoke: submit long job, kill -9 once the lease record is durable" >&2
curl -sf -X POST -d "$crash_spec" "$base/v1/jobs" >/dev/null
leased=""
for _ in $(seq 1 100); do
    # The CRC prefix precedes the JSON on each line; grep still matches.
    if grep -q '"status":"leased"' "$crash_journal" 2>/dev/null; then leased=1; break; fi
    sleep 0.1
done
[ -n "$leased" ] || { echo "smoke: lease record never reached the journal" >&2; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "smoke: restart with -resume; the re-queued job must complete" >&2
"$tmp/sttsimd" -mode coordinator -addr "$addr" \
    -checkpoint "$crash_journal" -resume -lease-timeout 5s -journal-sync always \
    >"$tmp/coordinator-crash2.log" 2>&1 &
pid=$!
wait_healthy
grep -q 're-queued 1 leased' "$tmp/coordinator-crash2.log" || {
    echo "smoke: restarted coordinator did not re-queue the leased job" >&2
    cat "$tmp/coordinator-crash2.log" >&2
    exit 1
}
# Resubmitting the same spec joins the re-queued in-flight job.
id=$(curl -sf -X POST -d "$crash_spec" "$base/v1/jobs" | json_field id)
[ -n "$id" ] || { echo "smoke: resubmission returned no id" >&2; exit 1; }
for _ in $(seq 1 300); do
    state=$(curl -sf "$base/v1/jobs/$id" | json_field state)
    [ "$state" = done ] && break
    if [ "$state" = failed ] || [ "$state" = cancelled ]; then
        echo "smoke: job ended $state" >&2
        cat "$tmp/coordinator-crash2.log" "$tmp"/w[12].log >&2
        exit 1
    fi
    sleep 0.1
done
[ "$state" = done ] || {
    echo "smoke: job never finished after the restart" >&2
    cat "$tmp/coordinator-crash2.log" "$tmp"/w[12].log >&2
    exit 1
}

echo "smoke: identical resubmission after the crash is a cache hit" >&2
resp=$(curl -sf -X POST -d "$crash_spec" "$base/v1/jobs")
echo "$resp" | grep -q '"cache_hit":true' || {
    echo "smoke: post-crash resubmission was not a cache hit: $resp" >&2
    exit 1
}
ok_count=$(grep -c '"status":"ok"' "$crash_journal" || true)
[ "$ok_count" = 1 ] || {
    echo "smoke: crash journal has $ok_count terminal ok record(s), want exactly 1" >&2
    exit 1
}

echo "smoke: shutdown" >&2
for wp in $worker_pids; do kill -TERM "$wp"; done
for wp in $worker_pids; do
    if ! wait "$wp"; then
        echo "smoke: worker exited non-zero on SIGTERM" >&2
        cat "$tmp"/w[12].log >&2
        exit 1
    fi
done
worker_pids=""
stop_daemon

echo "smoke: OK" >&2
