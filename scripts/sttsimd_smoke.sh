#!/usr/bin/env bash
# sttsimd end-to-end smoke test: start the daemon, submit two identical jobs,
# require the second to be served from the result cache, stream the job's SSE
# feed, restart the daemon against the same checkpoint journal and require a
# warm-cache hit, and finish with a graceful SIGTERM drain. Exercises the
# whole serving stack: HTTP surface, queue, singleflight/cache tiers, SSE
# fan-out, journal warm start, shutdown. A second phase brings up a
# coordinator with two workers and requires the distributed topology to serve
# bytes identical to the standalone run.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
addr="127.0.0.1:${STTSIMD_SMOKE_PORT:-18734}"
base="http://$addr"
pid=""
worker_pids=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    for wp in $worker_pids; do kill "$wp" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

spec='{"scheme":"stt4","bench":"milc","seed":11,"warmup_cycles":2000,"measure_cycles":6000}'

json_field() { # json_field <key> — first string value of "key" on stdin
    sed -n "s/.*\"$1\":\"\([^\"]*\)\".*/\1/p" | head -n1
}

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -sf "$base/v1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "smoke: daemon never became healthy" >&2
    exit 1
}

start_daemon() {
    "$tmp/sttsimd" -addr "$addr" -checkpoint "$tmp/journal.jsonl" "$@" \
        >"$tmp/daemon.log" 2>&1 &
    pid=$!
    wait_healthy
}

stop_daemon() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "smoke: daemon exited non-zero on SIGTERM" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    pid=""
}

echo "smoke: build" >&2
go build -o "$tmp/sttsimd" ./cmd/sttsimd

echo "smoke: start daemon" >&2
start_daemon

echo "smoke: submit job 1" >&2
id1=$(curl -sf -X POST -d "$spec" "$base/v1/jobs" | json_field id)
[ -n "$id1" ] || { echo "smoke: no job id returned" >&2; exit 1; }

for _ in $(seq 1 200); do
    state=$(curl -sf "$base/v1/jobs/$id1" | json_field state)
    [ "$state" = done ] && break
    if [ "$state" = failed ] || [ "$state" = cancelled ]; then
        echo "smoke: job 1 ended $state" >&2
        curl -sf "$base/v1/jobs/$id1" >&2
        exit 1
    fi
    sleep 0.1
done
[ "$state" = done ] || { echo "smoke: job 1 never finished" >&2; exit 1; }

echo "smoke: submit identical job 2 (expect cache hit)" >&2
resp2=$(curl -sf -X POST -d "$spec" "$base/v1/jobs")
echo "$resp2" | grep -q '"cache_hit":true' || {
    echo "smoke: second identical job was not a cache hit: $resp2" >&2
    exit 1
}
id2=$(echo "$resp2" | json_field id)

curl -sf "$base/v1/stats" | grep -q '"hits":[1-9]' || {
    echo "smoke: /v1/stats reports no cache hits" >&2
    exit 1
}

echo "smoke: stream SSE feed" >&2
sse=$(curl -sf -N --max-time 10 "$base/v1/jobs/$id2/events")
echo "$sse" | grep -q '^event: status' || { echo "smoke: SSE missing status event" >&2; exit 1; }
echo "$sse" | grep -q '^event: done' || { echo "smoke: SSE missing done event" >&2; exit 1; }

echo "smoke: byte-identical results for both clients" >&2
curl -sf "$base/v1/jobs/$id1/result" >"$tmp/r1.json"
curl -sf "$base/v1/jobs/$id2/result" >"$tmp/r2.json"
cmp -s "$tmp/r1.json" "$tmp/r2.json" || { echo "smoke: results differ" >&2; exit 1; }

echo "smoke: graceful shutdown" >&2
stop_daemon
grep -q '"status":"ok"' "$tmp/journal.jsonl" || {
    echo "smoke: journal has no ok record after drain" >&2
    exit 1
}

echo "smoke: restart with -resume (expect warm-cache hit, no execution)" >&2
start_daemon -resume
resp3=$(curl -sf -X POST -d "$spec" "$base/v1/jobs")
echo "$resp3" | grep -q '"cache_hit":true' || {
    echo "smoke: restarted daemon did not serve from the warmed cache: $resp3" >&2
    exit 1
}
curl -sf "$base/v1/stats" | grep -q '"executed":0' || {
    echo "smoke: restarted daemon re-executed a journaled config" >&2
    exit 1
}
stop_daemon

# --- Distributed phase: coordinator + 2 workers -----------------------------

echo "smoke: start coordinator (fresh journal)" >&2
"$tmp/sttsimd" -mode coordinator -addr "$addr" \
    -checkpoint "$tmp/journal-dist.jsonl" -lease-timeout 5s \
    >"$tmp/coordinator.log" 2>&1 &
pid=$!
wait_healthy

echo "smoke: readiness is 503 with no workers" >&2
ready_code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/healthz/ready")
[ "$ready_code" = 503 ] || {
    echo "smoke: workerless coordinator readiness = $ready_code, want 503" >&2
    exit 1
}

echo "smoke: start 2 workers" >&2
for wid in w1 w2; do
    "$tmp/sttsimd" -mode worker -coordinator "$base" -worker-id "$wid" \
        -heartbeat-interval 500ms >"$tmp/$wid.log" 2>&1 &
    worker_pids="$worker_pids $!"
done
for _ in $(seq 1 100); do
    ready_code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/healthz/ready")
    [ "$ready_code" = 200 ] && break
    sleep 0.1
done
[ "$ready_code" = 200 ] || {
    echo "smoke: coordinator never became ready after workers joined" >&2
    cat "$tmp/coordinator.log" >&2
    exit 1
}

echo "smoke: submit job to coordinator" >&2
id4=$(curl -sf -X POST -d "$spec" "$base/v1/jobs" | json_field id)
[ -n "$id4" ] || { echo "smoke: no job id from coordinator" >&2; exit 1; }
for _ in $(seq 1 200); do
    state=$(curl -sf "$base/v1/jobs/$id4" | json_field state)
    [ "$state" = done ] && break
    if [ "$state" = failed ] || [ "$state" = cancelled ]; then
        echo "smoke: distributed job ended $state" >&2
        curl -sf "$base/v1/jobs/$id4" >&2
        cat "$tmp/coordinator.log" "$tmp"/w*.log >&2
        exit 1
    fi
    sleep 0.1
done
[ "$state" = done ] || { echo "smoke: distributed job never finished" >&2; exit 1; }

echo "smoke: distributed result is byte-identical to standalone" >&2
curl -sf "$base/v1/jobs/$id4/result" >"$tmp/r4.json"
cmp -s "$tmp/r1.json" "$tmp/r4.json" || {
    echo "smoke: distributed result differs from standalone" >&2
    exit 1
}

echo "smoke: identical resubmission is a cache hit" >&2
resp5=$(curl -sf -X POST -d "$spec" "$base/v1/jobs")
echo "$resp5" | grep -q '"cache_hit":true' || {
    echo "smoke: coordinator resubmission was not a cache hit: $resp5" >&2
    exit 1
}

grep -q '"status":"leased"' "$tmp/journal-dist.jsonl" || {
    echo "smoke: coordinator journal has no write-ahead lease record" >&2
    exit 1
}

echo "smoke: graceful distributed shutdown" >&2
for wp in $worker_pids; do kill -TERM "$wp"; done
for wp in $worker_pids; do
    if ! wait "$wp"; then
        echo "smoke: worker exited non-zero on SIGTERM" >&2
        cat "$tmp"/w*.log >&2
        exit 1
    fi
done
worker_pids=""
stop_daemon

# --- Crash phase: kill -9 the coordinator mid-lease -------------------------
# The write-ahead lease record plus -resume must carry a job across a
# coordinator that vanishes without any shutdown path running.

echo "smoke: start coordinator for the crash phase (-journal-sync always)" >&2
crash_spec='{"scheme":"stt4","bench":"milc","seed":13,"warmup_cycles":20000,"measure_cycles":400000}'
crash_journal="$tmp/journal-crash.jsonl"
"$tmp/sttsimd" -mode coordinator -addr "$addr" \
    -checkpoint "$crash_journal" -lease-timeout 5s -journal-sync always \
    >"$tmp/coordinator-crash.log" 2>&1 &
pid=$!
wait_healthy
for wid in w3 w4; do
    "$tmp/sttsimd" -mode worker -coordinator "$base" -worker-id "$wid" \
        -heartbeat-interval 500ms >"$tmp/$wid.log" 2>&1 &
    worker_pids="$worker_pids $!"
done
for _ in $(seq 1 100); do
    ready_code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/healthz/ready")
    [ "$ready_code" = 200 ] && break
    sleep 0.1
done
[ "$ready_code" = 200 ] || { echo "smoke: crash-phase coordinator never ready" >&2; exit 1; }

echo "smoke: submit long job, kill -9 once the lease record is durable" >&2
curl -sf -X POST -d "$crash_spec" "$base/v1/jobs" >/dev/null
leased=""
for _ in $(seq 1 100); do
    # The CRC prefix precedes the JSON on each line; grep still matches.
    if grep -q '"status":"leased"' "$crash_journal" 2>/dev/null; then leased=1; break; fi
    sleep 0.1
done
[ -n "$leased" ] || { echo "smoke: lease record never reached the journal" >&2; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "smoke: restart with -resume; the re-queued job must complete" >&2
"$tmp/sttsimd" -mode coordinator -addr "$addr" \
    -checkpoint "$crash_journal" -resume -lease-timeout 5s -journal-sync always \
    >"$tmp/coordinator-crash2.log" 2>&1 &
pid=$!
wait_healthy
grep -q 're-queued 1 leased' "$tmp/coordinator-crash2.log" || {
    echo "smoke: restarted coordinator did not re-queue the leased job" >&2
    cat "$tmp/coordinator-crash2.log" >&2
    exit 1
}
# Resubmitting the same spec joins the re-queued in-flight job.
id6=$(curl -sf -X POST -d "$crash_spec" "$base/v1/jobs" | json_field id)
[ -n "$id6" ] || { echo "smoke: crash-phase resubmission returned no id" >&2; exit 1; }
for _ in $(seq 1 300); do
    state=$(curl -sf "$base/v1/jobs/$id6" | json_field state)
    [ "$state" = done ] && break
    if [ "$state" = failed ] || [ "$state" = cancelled ]; then
        echo "smoke: crash-phase job ended $state" >&2
        cat "$tmp/coordinator-crash2.log" "$tmp"/w[34].log >&2
        exit 1
    fi
    sleep 0.1
done
[ "$state" = done ] || {
    echo "smoke: crash-phase job never finished after the restart" >&2
    cat "$tmp/coordinator-crash2.log" "$tmp"/w[34].log >&2
    exit 1
}

echo "smoke: identical resubmission after the crash is a cache hit" >&2
resp6=$(curl -sf -X POST -d "$crash_spec" "$base/v1/jobs")
echo "$resp6" | grep -q '"cache_hit":true' || {
    echo "smoke: post-crash resubmission was not a cache hit: $resp6" >&2
    exit 1
}
ok_count=$(grep -c '"status":"ok"' "$crash_journal" || true)
[ "$ok_count" = 1 ] || {
    echo "smoke: crash journal has $ok_count terminal ok record(s), want exactly 1" >&2
    exit 1
}

echo "smoke: crash-phase shutdown" >&2
for wp in $worker_pids; do kill -TERM "$wp"; done
for wp in $worker_pids; do
    if ! wait "$wp"; then
        echo "smoke: crash-phase worker exited non-zero on SIGTERM" >&2
        cat "$tmp"/w[34].log >&2
        exit 1
    fi
done
worker_pids=""
stop_daemon

echo "smoke: OK" >&2
