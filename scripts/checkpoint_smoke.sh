#!/usr/bin/env bash
# Checkpoint round-trip smoke test: interrupt a campaign mid-flight with
# SIGINT, resume it from the journal, and require the resumed stdout to be
# byte-identical to an uninterrupted reference run. Exercises the whole
# supervision stack end to end: worker pool, graceful drain, JSONL journal,
# replay on -resume.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/experiments" ./cmd/experiments
args=(-exp fig6 -quick -warmup 1000 -measure 2500 -jobs 4)

echo "smoke: reference run" >&2
"$tmp/experiments" "${args[@]}" >"$tmp/ref.txt" 2>/dev/null

echo "smoke: interrupted run" >&2
"$tmp/experiments" "${args[@]}" -checkpoint "$tmp/ckpt.jsonl" \
    >"$tmp/partial.txt" 2>"$tmp/partial.err" &
pid=$!
sleep 2
kill -INT "$pid" 2>/dev/null || true
if wait "$pid"; then
    # The campaign beat the interrupt on a fast machine; the journal is then
    # complete and the resume leg just replays everything — still a valid
    # round trip, so carry on.
    echo "smoke: campaign finished before the interrupt landed" >&2
else
    echo "smoke: campaign interrupted (exit $?)" >&2
fi
if [[ ! -s "$tmp/ckpt.jsonl" ]]; then
    echo "smoke: FAIL — interrupted campaign journaled nothing" >&2
    exit 1
fi
echo "smoke: $(wc -l <"$tmp/ckpt.jsonl") journal records" >&2

echo "smoke: resumed run" >&2
"$tmp/experiments" "${args[@]}" -checkpoint "$tmp/ckpt.jsonl" -resume \
    >"$tmp/resumed.txt" 2>"$tmp/resumed.err"
grep -q "resuming" "$tmp/resumed.err" || {
    echo "smoke: FAIL — resume replayed no journal records" >&2
    exit 1
}
if ! diff -u "$tmp/ref.txt" "$tmp/resumed.txt"; then
    echo "smoke: FAIL — resumed output differs from the reference run" >&2
    exit 1
fi
echo "smoke: OK — resumed output byte-identical to the reference" >&2
