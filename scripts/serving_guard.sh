#!/usr/bin/env bash
# serving_guard.sh — serving SLO gate over the checked-in baseline
# (BENCH_serving.json at the repo root), the HTTP-layer sibling of
# bench_guard.sh.
#
# Runs cmd/loadgen against a self-hosted daemon: a mixed unique/duplicate/
# invalid workload through the pkg/sttsim client. Two kinds of verdict:
#
#  1. SLO gate (always enforced, on every host): loadgen's own assertions —
#     submit p99, end-to-end p99, cache hit ratio, the unexpected-error
#     budget, and the dedup invariant (the engine must never execute one
#     fingerprint twice). These are generous absolute bounds, not wall-clock
#     comparisons, so they hold on any machine CI lands on.
#  2. Throughput gate (matching host only): submits/sec may not fall more
#     than TOLERANCE_PCT below the checked-in baseline. Any other host key
#     skips this (the SLO gate still applies), same policy as bench_guard.
#
#   scripts/serving_guard.sh           # gate against BENCH_serving.json
#   scripts/serving_guard.sh -update   # re-record the baseline on this host
#
# `make loadtest` runs this; the client-e2e CI job runs `make loadtest`.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_serving.json
TOLERANCE_PCT=30
N="${LOADGEN_N:-1000}"

if [[ "${1:-}" == "-update" ]]; then
    go run ./cmd/loadgen -n "$N" -out "$BASELINE"
    echo "serving_guard: baseline updated"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "serving_guard: no baseline at ${BASELINE}; record one with scripts/serving_guard.sh -update" >&2
    exit 1
fi

out="$(mktemp /tmp/serving_guard.XXXXXX.json)"
trap 'rm -f "$out"' EXIT

# The SLO gate: loadgen exits 1 on any violation.
go run ./cmd/loadgen -n "$N" -out "$out" > /dev/null

field() { # field <file> <json key> — first scalar occurrence
    sed -n "s/.*\"$2\": *\([0-9.]*\).*/\1/p" "$1" | head -1
}

host_key="$(uname -sm | tr ' ' '-')-$(nproc)c"
base_host="$(sed -n 's/.*"host": *"\([^"]*\)".*/\1/p' "$BASELINE" | head -1)"
rate="$(field "$out" submits_per_sec)"
base_rate="$(field "$BASELINE" submits_per_sec)"
p99="$(field "$out" submit_p99_s)"
hit="$(field "$out" cache_hit_ratio)"

echo "serving_guard: ${N} submissions at ${rate}/s, submit p99 ${p99}s, hit ratio ${hit} — SLO gate clean"

if [[ "$base_host" != "$host_key" ]]; then
    echo "serving_guard: baseline recorded on ${base_host}, this host is ${host_key}; throughput gate skipped (SLO gate still applies)"
    exit 0
fi

ok="$(awk -v r="$rate" -v b="$base_rate" -v tol="$TOLERANCE_PCT" \
    'BEGIN { print (r >= b * (1 - tol/100)) ? 1 : 0 }')"
pct="$(awk -v r="$rate" -v b="$base_rate" 'BEGIN { printf "%+.1f", (r/b - 1) * 100 }')"
if [[ "$ok" == 1 ]]; then
    echo "serving_guard: throughput ${rate}/s vs baseline ${base_rate}/s (${pct}%) — clean"
else
    echo "serving_guard: FAIL — throughput ${rate}/s fell more than ${TOLERANCE_PCT}% below baseline ${base_rate}/s (${pct}%)" >&2
    echo "serving_guard: fix the regression, or re-baseline deliberately with: scripts/serving_guard.sh -update" >&2
    exit 1
fi
