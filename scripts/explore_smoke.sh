#!/usr/bin/env bash
# Exploration resume smoke test: run a tiny grid search end to end, then kill
# a second search mid-flight with SIGINT and resume it from its journal.
# Asserts (1) zero re-executed points on resume — every key appears exactly
# once in the journal and the resumed engine replays instead of re-running —
# and (2) the resumed Pareto frontier is byte-identical to the uninterrupted
# reference.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/explore" ./cmd/explore
# 6 points (3 tech profiles x 2 write-buffer depths) on the paper's 8x8x2
# shape; the budget is big enough that the interrupt lands mid-campaign on
# any realistic machine.
args=(-bench tpcc -tech sttram,sttram-rr10,sotram -wbuf 0,20
      -warmup 1000 -measure 40000 -jobs 2)

echo "explore-smoke: reference run" >&2
"$tmp/explore" "${args[@]}" -out "$tmp/ref" >/dev/null 2>"$tmp/ref.err"
ref_points=$(wc -l <"$tmp/ref/pareto.jsonl")
echo "explore-smoke: reference frontier has $ref_points point(s)" >&2

echo "explore-smoke: interrupted run" >&2
"$tmp/explore" "${args[@]}" -journal "$tmp/explore.journal" -out "$tmp/partial" \
    >/dev/null 2>"$tmp/partial.err" &
pid=$!
# Interrupt only once at least one verdict is durably journaled, so the
# resume leg always has something to replay regardless of host speed.
for _ in $(seq 1 240); do
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    if [[ -s "$tmp/explore.journal" ]] && grep -q '"key"' "$tmp/explore.journal"; then break; fi
    sleep 0.25
done
kill -INT "$pid" 2>/dev/null || true
if wait "$pid"; then
    # The search beat the interrupt on a fast machine; the journal is then
    # complete and the resume leg replays everything — still a valid round
    # trip.
    echo "explore-smoke: search finished before the interrupt landed" >&2
else
    echo "explore-smoke: search interrupted (exit $?)" >&2
fi
if [[ ! -s "$tmp/explore.journal" ]]; then
    echo "explore-smoke: FAIL — interrupted search journaled nothing" >&2
    exit 1
fi
first_records=$(grep -c '"key"' "$tmp/explore.journal")
echo "explore-smoke: $first_records verdict(s) journaled before the interrupt" >&2

echo "explore-smoke: resumed run" >&2
"$tmp/explore" "${args[@]}" -journal "$tmp/explore.journal" -resume -out "$tmp/resumed" \
    >/dev/null 2>"$tmp/resumed.err"
if [[ "$first_records" -gt 0 ]] && ! grep -q "resumed" "$tmp/resumed.err"; then
    echo "explore-smoke: FAIL — resume replayed no journal records" >&2
    cat "$tmp/resumed.err" >&2
    exit 1
fi

# Zero re-executed points: a re-run of an already-journaled key would append
# a second record for it, so every key must appear exactly once.
dupes=$(grep -o '"key":"[^"]*"' "$tmp/explore.journal" | sort | uniq -d)
if [[ -n "$dupes" ]]; then
    echo "explore-smoke: FAIL — journal re-recorded key(s), points were re-executed:" >&2
    echo "$dupes" >&2
    exit 1
fi
total_records=$(grep -c '"key"' "$tmp/explore.journal")
if [[ "$total_records" -ne 6 ]]; then
    echo "explore-smoke: FAIL — expected 6 journaled verdicts after resume, got $total_records" >&2
    exit 1
fi

if ! diff -u "$tmp/ref/pareto.jsonl" "$tmp/resumed/pareto.jsonl"; then
    echo "explore-smoke: FAIL — resumed frontier differs from the reference" >&2
    exit 1
fi
echo "explore-smoke: OK — no re-executed points, frontier byte-identical to the reference" >&2
