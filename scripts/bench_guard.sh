#!/usr/bin/env bash
# bench_guard.sh — performance regression guard over the checked-in baseline
# (BENCH_baseline.json at the repo root). Three benchmarks are gated:
#
#   BenchmarkTracingDisabled   the observability disabled path: a full
#                              simulator cycle with tracing compiled in but
#                              off must stay free (DESIGN.md §11)
#   BenchmarkSteadyStateCycle  the zero-allocation contract: a warmed WB
#                              simulator cycle must stay at 0 allocs/op
#                              (DESIGN.md §13)
#   BenchmarkFullRun/wb        end-to-end sim.Run wall clock and total
#                              allocation count for the heaviest scheme
#
# Each benchmark is compared on two axes:
#
#  1. Allocation gate (always enforced, on every host): allocs/op and B/op
#     are deterministic — per cycle for the steady-state benches, per whole
#     run for FullRun — so any new allocation fails exactly, regardless of
#     machine noise. This is the gate CI relies on.
#  2. Wall-clock gate (enforced when measurable): min ns/op may not regress
#     more than TOLERANCE_PCT over the baseline. Wall-clock is only
#     trustworthy on a quiet machine, so the guard first measures its own
#     noise floor — the two halves of the sample set are compared A/A, and
#     when they disagree by more than the tolerance itself the wall-clock
#     verdict is skipped with a note. A host other than the one that
#     recorded the baseline also skips wall-clock (the allocation gate
#     still applies). An over-tolerance reading is re-measured up to twice
#     with all samples min-merged — slowness waves only inflate ns/op, so
#     the min across attempts converges on the true cost.
#
#   scripts/bench_guard.sh           # compare against BENCH_baseline.json
#   scripts/bench_guard.sh -update   # re-record the baseline on this host
#
# `make verify` runs this after the tests pass.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.json
BENCHES=(BenchmarkTracingDisabled BenchmarkSteadyStateCycle BenchmarkFullRun/wb)
# Informational rows: the same FullRun under the intra-run worker pool (-par).
# Recorded on -update and reported on every run, but never gating — speedup
# depends on the host's core count, which a checked-in baseline cannot pin.
PAR_BENCHES=(BenchmarkFullRunPar/wb-2 BenchmarkFullRunPar/wb-4)
COUNT=6
BENCHTIME=500ms
# Wall-clock gate: loose enough to ignore scheduler jitter on a busy host
# (noise arrives in waves slower than one benchmark invocation, which the
# A/A self-check below cannot see), tight enough to catch a structural
# hot-loop regression (the optimizations this guard protects are 2x+). The
# allocation gate is what is meant to be exact.
TOLERANCE_PCT=10
# B/op absolute slack: the cycle benchmarks amortize one-off warmup
# allocations over b.N, leaving a few residual bytes/op that jitter with the
# iteration count. Allocs/op has no such residue and is held exact.
BYTES_SLACK=64

host_key="$(uname -sm | tr ' ' '-')-$(nproc)c"

# One line per sample: "<benchmark> <ns/op> <B/op> <allocs/op>". Two
# invocations: a sub-benchmark pattern element (the /^wb$/) would filter out
# the leaf benchmarks, so they cannot share one -bench expression.
run_bench() {
    {
        go test -run '^$' -bench '^(BenchmarkTracingDisabled|BenchmarkSteadyStateCycle)$' \
            -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .
        go test -run '^$' -bench '^BenchmarkFullRun$/^wb$' \
            -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .
        go test -run '^$' -bench '^BenchmarkFullRunPar$/^wb-[24]$' \
            -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .
    } | awk -v procs="${GOMAXPROCS:-$(nproc)}" '$2 ~ /^[0-9]+$/ && $4 == "ns/op" {
            # Strip exactly the -GOMAXPROCS suffix (absent when procs is 1):
            # a blanket -[0-9]+$ strip would also eat the worker count in
            # sub-benchmark names like FullRunPar/wb-2.
            name = $1
            if (procs > 1) sub("-" procs "$", "", name)
            print name, $3, $5, $7
        }'
}

# col_min <samples> <bench> <column (2=ns 3=B 4=allocs)>
col_min() {
    printf '%s\n' "$1" | awk -v b="$2" -v c="$3" '$1 == b {print $c}' | sort -n | head -1
}

samples="$(run_bench)"
for bench in "${BENCHES[@]}" "${PAR_BENCHES[@]}"; do
    n="$(printf '%s\n' "$samples" | awk -v b="$bench" '$1 == b' | wc -l)"
    if [[ "$n" -lt "$COUNT" ]]; then
        echo "bench_guard: expected $COUNT samples of ${bench}, got $n" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "-update" ]]; then
    {
        printf '{\n  "host": "%s",\n  "benchmarks": [\n' "$host_key"
        sep=''
        for bench in "${BENCHES[@]}" "${PAR_BENCHES[@]}"; do
            printf '%s    {"name": "%s", "ns_per_op": %s, "bytes_per_op": %s, "allocs_per_op": %s}' \
                "$sep" "$bench" \
                "$(col_min "$samples" "$bench" 2)" \
                "$(col_min "$samples" "$bench" 3)" \
                "$(col_min "$samples" "$bench" 4)"
            sep=$',\n'
        done
        printf '\n  ]\n}\n'
    } > "$BASELINE"
    echo "bench_guard: baseline updated on ${host_key}:"
    for bench in "${BENCHES[@]}" "${PAR_BENCHES[@]}"; do
        echo "  ${bench}: $(col_min "$samples" "$bench" 2) ns/op, $(col_min "$samples" "$bench" 3) B/op, $(col_min "$samples" "$bench" 4) allocs/op"
    done
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_guard: no baseline at ${BASELINE}; record one with scripts/bench_guard.sh -update" >&2
    exit 0
fi

base_host="$(sed -n 's/.*"host": *"\([^"]*\)".*/\1/p' "$BASELINE")"
# base_field <bench> <field>
base_field() {
    sed -n "s|.*\"name\": *\"$1\", *\"ns_per_op\": *\([0-9.]*\), *\"bytes_per_op\": *\([0-9.]*\), *\"allocs_per_op\": *\([0-9.]*\).*|\\$2|p" "$BASELINE"
}

wallclock=1
if [[ "$base_host" != "$host_key" ]]; then
    echo "bench_guard: baseline recorded on ${base_host}, this host is ${host_key}; wall-clock gate skipped (allocation gate still applies)"
    wallclock=0
fi

# judge reads $samples and sets alloc_fail / wc_fail. Wall-clock verdicts
# use the min over ALL accumulated samples: host slowness only ever inflates
# ns/op, so min-merging samples from repeated attempts converges on the true
# value even when a slow wave spans a whole benchmark invocation (which the
# A/A split inside one invocation cannot see).
judge() {
alloc_fail=0
wc_fail=0
for bench in "${BENCHES[@]}"; do
    base_ns="$(base_field "$bench" 1)"
    base_bytes="$(base_field "$bench" 2)"
    base_allocs="$(base_field "$bench" 3)"
    # A benchmark absent from the baseline is a freshly added one, not a
    # regression: warn and skip so adding a benchmark doesn't break verify on
    # branches whose baseline predates it. It gets a row on the next -update.
    if [[ -z "$base_ns" || -z "$base_bytes" || -z "$base_allocs" ]]; then
        echo "bench_guard: WARN — ${bench} has no row in ${BASELINE} (new benchmark?); skipping, re-record with -update"
        continue
    fi
    ns="$(col_min "$samples" "$bench" 2)"
    bytes="$(col_min "$samples" "$bench" 3)"
    allocs="$(col_min "$samples" "$bench" 4)"

    # Allocation gate: allocs/op exact up to 2%, B/op additionally gets the
    # absolute residue slack.
    for gate in "allocs/op:$allocs:$base_allocs:0" "B/op:$bytes:$base_bytes:$BYTES_SLACK"; do
        IFS=: read -r label got base slack <<< "$gate"
        ok="$(awk -v g="$got" -v b="$base" -v s="$slack" \
            'BEGIN { print (g <= b * 1.02 + s + 0.5) ? 1 : 0 }')"
        if [[ "$ok" != 1 ]]; then
            echo "bench_guard: FAIL — ${bench} ${label} grew: ${got} vs baseline ${base}" >&2
            alloc_fail=1
        fi
    done

    if [[ "$wallclock" != 1 ]]; then
        echo "bench_guard: ${bench}: allocation gate clean (${allocs} allocs/op, ${bytes} B/op)"
        continue
    fi

    # Wall-clock gate, guarded by an A/A noise estimate over the sample halves.
    half=$(( $(printf '%s\n' "$samples" | awk -v b="$bench" '$1 == b' | wc -l) / 2 ))
    m1="$(printf '%s\n' "$samples" | awk -v b="$bench" '$1 == b {print $2}' | head -n "$half" | sort -n | head -1)"
    m2="$(printf '%s\n' "$samples" | awk -v b="$bench" '$1 == b {print $2}' | tail -n "$half" | sort -n | head -1)"
    noise="$(awk -v a="$m1" -v b="$m2" \
        'BEGIN { d = (a > b) ? a - b : b - a; m = (a < b) ? a : b; printf "%.2f", d * 100 / m }')"
    noisy="$(awk -v n="$noise" -v tol="$TOLERANCE_PCT" 'BEGIN { print (n > tol) ? 1 : 0 }')"
    pct="$(awk -v ns="$ns" -v base="$base_ns" 'BEGIN { printf "%+.2f", (ns/base - 1) * 100 }')"
    if [[ "$noisy" == 1 ]]; then
        echo "bench_guard: ${bench}: host too noisy to judge wall-clock (A/A split disagrees by ${noise}%); ns/op gate skipped (measured ${ns} vs baseline ${base_ns}, ${pct}%); allocation gate clean (${allocs} allocs/op)"
        continue
    fi
    ok="$(awk -v ns="$ns" -v base="$base_ns" -v tol="$TOLERANCE_PCT" \
        'BEGIN { print (ns <= base * (1 + tol/100)) ? 1 : 0 }')"
    if [[ "$ok" == 1 ]]; then
        echo "bench_guard: ${bench}: ${ns} ns/op vs baseline ${base_ns} (${pct}%), ${allocs} allocs/op — clean"
    else
        echo "bench_guard: FAIL — ${bench}: ${ns} ns/op vs baseline ${base_ns} ns/op (${pct}% > +${TOLERANCE_PCT}%)" >&2
        wc_fail=1
    fi
done

# Informational -par rows: reported for visibility, never failing. The useful
# signal is the ratio against BenchmarkFullRun/wb on a multi-core host.
for bench in "${PAR_BENCHES[@]}"; do
    base_ns="$(base_field "$bench" 1)"
    ns="$(col_min "$samples" "$bench" 2)"
    allocs="$(col_min "$samples" "$bench" 4)"
    if [[ -z "$base_ns" ]]; then
        echo "bench_guard: info — ${bench}: ${ns} ns/op, ${allocs} allocs/op (no baseline row yet; recorded on next -update)"
    else
        pct="$(awk -v ns="$ns" -v base="$base_ns" 'BEGIN { printf "%+.2f", (ns/base - 1) * 100 }')"
        echo "bench_guard: info — ${bench}: ${ns} ns/op vs baseline ${base_ns} (${pct}%), ${allocs} allocs/op (not gated)"
    fi
done
}

# Wall-clock failures get two retries with min-merged samples (see judge);
# allocation failures are deterministic and never retried.
MAX_TRIES=3
try=1
while :; do
    judge
    if [[ "$wc_fail" != 1 || "$try" -ge "$MAX_TRIES" ]]; then
        break
    fi
    try=$((try + 1))
    echo "bench_guard: wall-clock over tolerance; re-measuring (attempt ${try}/${MAX_TRIES}, min-merged)"
    sleep 5
    samples="$samples"$'\n'"$(run_bench)"
done

if [[ "$alloc_fail" == 1 || "$wc_fail" == 1 ]]; then
    echo "bench_guard: the hot loop must stay allocation-free and within ${TOLERANCE_PCT}% of baseline;" >&2
    echo "bench_guard: fix the regression, or re-baseline deliberately with: scripts/bench_guard.sh -update" >&2
    exit 1
fi
