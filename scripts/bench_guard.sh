#!/usr/bin/env bash
# bench_guard.sh — regression guard for the observability layer's disabled
# path. The tracing/metrics hooks are compiled into the hot loop; the design
# contract (DESIGN.md §11) is that a run with Obs disabled pays at most a nil
# check. The guard benchmarks BenchmarkTracingDisabled (a full simulator
# cycle with observability compiled in but off) and compares against the
# checked-in baseline on two axes:
#
#  1. Allocation gate (always enforced): allocs/op and B/op are deterministic
#     per cycle, so any new allocation on the disabled path — building an
#     Event before the nil check, a closure, a map — fails exactly,
#     regardless of machine noise.
#  2. Wall-clock gate (enforced when measurable): min ns/op may not regress
#     more than TOLERANCE_PCT over the baseline. Wall-clock is only
#     trustworthy on a quiet machine, so the guard first measures its own
#     noise floor — the two halves of the sample set are compared A/A, and
#     when they disagree by more than the tolerance itself the wall-clock
#     verdict is skipped with a note (the allocation gate still applies).
#
#   scripts/bench_guard.sh           # compare against scripts/bench_baseline.json
#   scripts/bench_guard.sh -update   # re-record the baseline on this host
#
# Benchmarks only compare meaningfully on the machine that recorded the
# baseline, so a host mismatch downgrades the guard to a warning (exit 0) —
# CI runners and teammates' laptops are not silently gated on someone else's
# hardware. `make verify` runs this after the test passes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/bench_baseline.json
BENCH=BenchmarkTracingDisabled
COUNT=6
BENCHTIME=500ms
TOLERANCE_PCT=2

host_key="$(uname -sm | tr ' ' '-')-$(nproc)c"

# One line per sample: "<ns/op> <B/op> <allocs/op>".
run_bench() {
    go test -run '^$' -bench "^${BENCH}\$" -benchmem \
        -benchtime "$BENCHTIME" -count "$COUNT" . |
        awk -v b="$BENCH" '$1 ~ "^"b && $4 == "ns/op" {print $3, $5, $7}'
}

col_min() { awk -v c="$1" '{print $c}' | sort -n | head -1; }

samples="$(run_bench)"
n_samples="$(printf '%s\n' "$samples" | wc -l)"
if [[ -z "$samples" || "$n_samples" -lt "$COUNT" ]]; then
    echo "bench_guard: expected $COUNT benchmark samples, got $n_samples" >&2
    exit 1
fi
ns="$(printf '%s\n' "$samples" | col_min 1)"
bytes="$(printf '%s\n' "$samples" | col_min 2)"
allocs="$(printf '%s\n' "$samples" | col_min 3)"

if [[ "${1:-}" == "-update" ]]; then
    printf '{\n  "host": "%s",\n  "benchmark": "%s",\n  "ns_per_op": %s,\n  "bytes_per_op": %s,\n  "allocs_per_op": %s\n}\n' \
        "$host_key" "$BENCH" "$ns" "$bytes" "$allocs" > "$BASELINE"
    echo "bench_guard: baseline updated: ${ns} ns/op, ${bytes} B/op, ${allocs} allocs/op on ${host_key}"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_guard: no baseline at ${BASELINE}; record one with scripts/bench_guard.sh -update" >&2
    exit 0
fi

json_field() { sed -n "s/.*\"$1\": *\"\{0,1\}\([^\",}]*\).*/\1/p" "$BASELINE"; }
base_host="$(json_field host)"
base_ns="$(json_field ns_per_op)"
base_bytes="$(json_field bytes_per_op)"
base_allocs="$(json_field allocs_per_op)"
if [[ -z "$base_host" || -z "$base_ns" || -z "$base_bytes" || -z "$base_allocs" ]]; then
    echo "bench_guard: malformed baseline ${BASELINE}; re-record with -update" >&2
    exit 1
fi

if [[ "$base_host" != "$host_key" ]]; then
    echo "bench_guard: baseline recorded on ${base_host}, this host is ${host_key}; skipping (re-baseline with -update)"
    exit 0
fi

fail=0

# Allocation gate: exact up to the tolerance (B/op can drift <1% with b.N
# amortization of setup allocations).
for gate in "allocs/op:$allocs:$base_allocs" "B/op:$bytes:$base_bytes"; do
    IFS=: read -r label got base <<< "$gate"
    ok="$(awk -v g="$got" -v b="$base" -v tol="$TOLERANCE_PCT" \
        'BEGIN { print (g <= b * (1 + tol/100)) ? 1 : 0 }')"
    if [[ "$ok" != 1 ]]; then
        echo "bench_guard: FAIL — disabled-path ${label} grew: ${got} vs baseline ${base}" >&2
        echo "bench_guard: something now allocates before the obs nil check" >&2
        fail=1
    fi
done

# Wall-clock gate, guarded by an A/A noise estimate over the sample halves.
half=$((n_samples / 2))
m1="$(printf '%s\n' "$samples" | head -n "$half" | col_min 1)"
m2="$(printf '%s\n' "$samples" | tail -n "$half" | col_min 1)"
noise="$(awk -v a="$m1" -v b="$m2" \
    'BEGIN { d = (a > b) ? a - b : b - a; m = (a < b) ? a : b; printf "%.2f", d * 100 / m }')"
noisy="$(awk -v n="$noise" -v tol="$TOLERANCE_PCT" 'BEGIN { print (n > tol) ? 1 : 0 }')"
pct="$(awk -v ns="$ns" -v base="$base_ns" 'BEGIN { printf "%+.2f", (ns/base - 1) * 100 }')"
if [[ "$noisy" == 1 ]]; then
    echo "bench_guard: host too noisy to judge wall-clock (A/A split disagrees by ${noise}%); ns/op gate skipped (measured ${ns} vs baseline ${base_ns}, ${pct}%)"
else
    ok="$(awk -v ns="$ns" -v base="$base_ns" -v tol="$TOLERANCE_PCT" \
        'BEGIN { print (ns <= base * (1 + tol/100)) ? 1 : 0 }')"
    if [[ "$ok" == 1 ]]; then
        echo "bench_guard: disabled-path ${ns} ns/op vs baseline ${base_ns} ns/op (${pct}%) — within ${TOLERANCE_PCT}%"
    else
        echo "bench_guard: FAIL — disabled-path ${ns} ns/op vs baseline ${base_ns} ns/op (${pct}% > +${TOLERANCE_PCT}%)" >&2
        fail=1
    fi
fi

if [[ "$fail" == 1 ]]; then
    echo "bench_guard: the observability hooks must stay zero-cost when disabled;" >&2
    echo "bench_guard: fix the regression, or re-baseline deliberately with: scripts/bench_guard.sh -update" >&2
    exit 1
fi
echo "bench_guard: allocation gate clean (${allocs} allocs/op, ${bytes} B/op)"
