// Package sttsim's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (each regenerates the corresponding
// rows/series through internal/exp at a reduced cycle budget), plus
// micro-benchmarks of the substrates (network, bank, workload generator,
// whole-system cycle rate).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// and the full-scale tables with:
//
//	go run ./cmd/experiments
package sttsim_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"sttsim/internal/exp"
	"sttsim/internal/mem"
	"sttsim/internal/noc"
	"sttsim/internal/obs"
	"sttsim/internal/sim"
	"sttsim/internal/trace"
	"sttsim/internal/workload"
)

// benchRunner builds a fresh memoizing runner at benchmark scale.
func benchRunner() *exp.Runner {
	return exp.NewRunner(exp.Options{Quick: true, WarmupCycles: 1500, MeasureCycles: 4000})
}

func must(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Paper tables and figures.
// ---------------------------------------------------------------------------

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table2(io.Discard)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(benchRunner())
		must(b, err)
		exp.PrintTable3(io.Discard, rows)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := exp.Figure3(benchRunner())
		must(b, err)
		exp.PrintFigure3(io.Discard, entries)
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure6(benchRunner())
		must(b, err)
		exp.PrintFigure6(io.Discard, res)
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := exp.Figure7(benchRunner())
		must(b, err)
		exp.PrintFigure7(io.Discard, entries)
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := exp.Figure8(benchRunner())
		must(b, err)
		exp.PrintFigure8(io.Discard, entries)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := exp.Figure9(benchRunner())
		must(b, err)
		exp.PrintFigure9(io.Discard, cases)
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := exp.Figure10(benchRunner())
		must(b, err)
		exp.PrintFigure10(io.Discard, entries)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := exp.Figure12(benchRunner())
		must(b, err)
		exp.PrintFigure12(io.Discard, points)
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure13(benchRunner())
		must(b, err)
		exp.PrintFigure13(io.Discard, res)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := exp.Figure14(benchRunner())
		must(b, err)
		exp.PrintFigure14(io.Discard, entries)
	}
}

// ---------------------------------------------------------------------------
// Per-scheme whole-system simulation rate (cycles of the 128-node CMP per
// wall-clock second) on the paper's heaviest server workload.
// ---------------------------------------------------------------------------

func benchScheme(b *testing.B, s sim.Scheme) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Scheme:        s,
			Assignment:    workload.Homogeneous(workload.MustByName("tpcc")),
			WarmupCycles:  1000,
			MeasureCycles: 4000,
		})
		must(b, err)
	}
}

func BenchmarkSchemeSRAM64TSB(b *testing.B)  { benchScheme(b, sim.SchemeSRAM64TSB) }
func BenchmarkSchemeSTT64TSB(b *testing.B)   { benchScheme(b, sim.SchemeSTT64TSB) }
func BenchmarkSchemeSTT4TSB(b *testing.B)    { benchScheme(b, sim.SchemeSTT4TSB) }
func BenchmarkSchemeSTT4TSBSS(b *testing.B)  { benchScheme(b, sim.SchemeSTT4TSBSS) }
func BenchmarkSchemeSTT4TSBRCA(b *testing.B) { benchScheme(b, sim.SchemeSTT4TSBRCA) }
func BenchmarkSchemeSTT4TSBWB(b *testing.B)  { benchScheme(b, sim.SchemeSTT4TSBWB) }

// BenchmarkFullRun is the bench-guard's end-to-end gate: one complete
// sim.Run (construction, warmup, measurement, result extraction) per
// iteration for each contended scheme family of the paper. Unlike the cycle
// micro-benchmarks there is no amortization across b.N — ns/op and allocs/op
// are per whole run, so allocs/op is deterministic and comparable across
// hosts.
func BenchmarkFullRun(b *testing.B) {
	for _, c := range []struct {
		name   string
		scheme sim.Scheme
	}{
		{"baseline", sim.SchemeSTT4TSB},
		{"ss", sim.SchemeSTT4TSBSS},
		{"rca", sim.SchemeSTT4TSBRCA},
		{"wb", sim.SchemeSTT4TSBWB},
	} {
		b.Run(c.name, func(b *testing.B) { benchScheme(b, c.scheme) })
	}
}

// BenchmarkFullRunPar is BenchmarkFullRun/wb under the two-phase tick's
// intra-run worker pool (the CLIs' -par flag). Results are byte-identical to
// the sequential run at any worker count; only the wall clock moves. The
// bench guard records these rows but compares them warn-only — speedup
// depends on host core count, which the baseline can't pin.
func BenchmarkFullRunPar(b *testing.B) {
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("wb-%d", workers), func(b *testing.B) {
			sim.SetParallelism(workers)
			defer sim.SetParallelism(1)
			benchScheme(b, sim.SchemeSTT4TSBWB)
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkNetworkTick measures the idle+loaded cycle cost of the full
// 128-router network.
func BenchmarkNetworkTick(b *testing.B) {
	routing, err := noc.NewRouting(noc.PathAllTSVs, nil)
	must(b, err)
	n, err := noc.NewNetwork(noc.Config{Routing: routing})
	must(b, err)
	for d := noc.NodeID(0); d < noc.NumNodes; d++ {
		n.SetDeliver(d, func(*noc.Packet, uint64) {})
	}
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50 == 0 {
			// Keep a steady trickle of data packets in flight.
			n.Inject(&noc.Packet{Kind: noc.KindWriteReq,
				Src: noc.NodeID(i % 64), Dst: noc.NodeID(64 + (i*7)%64)}, now)
		}
		if err := n.Step(now); err != nil {
			b.Fatal(err)
		}
		now++
	}
}

// BenchmarkBankService measures the raw bank model throughput under a
// read/write mix.
func BenchmarkBankService(b *testing.B) {
	bank := mem.NewBank(mem.STTRAM)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bank.QueueLen() < 4 {
			op := mem.OpRead
			if i%3 == 0 {
				op = mem.OpWrite
			}
			bank.Enqueue(&mem.Request{Op: op, Addr: uint64(i), ID: uint64(i)}, now)
		}
		bank.Tick(now)
		now++
	}
}

// BenchmarkBufferedBankService measures the BUFF-20 fast path.
func BenchmarkBufferedBankService(b *testing.B) {
	bank := mem.NewBufferedBank(mem.STTRAM, 20, true)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bank.QueueLen() < 4 {
			op := mem.OpRead
			if i%3 == 0 {
				op = mem.OpWrite
			}
			bank.Enqueue(&mem.Request{Op: op, Addr: uint64(i % 64), ID: uint64(i)}, now)
		}
		bank.Tick(now)
		now++
	}
}

// BenchmarkGenerator measures per-instruction workload generation cost.
func BenchmarkGenerator(b *testing.B) {
	g := workload.NewGenerator(workload.MustByName("tpcc"), 0, workload.ModeShared, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkSimulatorCycle measures the whole-system cost per simulated cycle
// under the full WB scheme.
func BenchmarkSimulatorCycle(b *testing.B) {
	s, err := sim.New(sim.Config{
		Scheme:     sim.SchemeSTT4TSBWB,
		Assignment: workload.Homogeneous(workload.MustByName("tpcc")),
	})
	must(b, err)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateCycle is the zero-allocation gate: it steps the WB
// simulator past its fill transient (pools populated, queues at working
// depth) before the timer starts, so the reported allocs/op is the true
// steady-state figure — the bench guard pins it at 0.
func BenchmarkSteadyStateCycle(b *testing.B) {
	s, err := sim.New(sim.Config{
		Scheme:     sim.SchemeSTT4TSBWB,
		Assignment: workload.Homogeneous(workload.MustByName("tpcc")),
	})
	must(b, err)
	defer s.Close()
	for i := 0; i < 5000; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTracing is BenchmarkSimulatorCycle under a given observability
// configuration; the disabled/enabled pair quantifies the tracing overhead
// and feeds scripts/bench_guard.sh, which fails `make verify` when the
// disabled path regresses more than 2% against its checked-in baseline.
func benchTracing(b *testing.B, oc *sim.ObsConfig) {
	s, err := sim.New(sim.Config{
		Scheme:     sim.SchemeSTT4TSBWB,
		Assignment: workload.Homogeneous(workload.MustByName("tpcc")),
		Obs:        oc,
	})
	must(b, err)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingDisabled is the guarded hot path: observability compiled in
// but switched off (the default for every experiment run).
func BenchmarkTracingDisabled(b *testing.B) { benchTracing(b, nil) }

// BenchmarkTracingEnabled measures the full event-tracing cost into a
// discarded binary sink (encode + buffer, no disk).
func BenchmarkTracingEnabled(b *testing.B) {
	benchTracing(b, &sim.ObsConfig{Sink: obs.NewBinarySink(io.Discard)})
}

// BenchmarkMetricsEnabled measures the sampling-registry-only configuration.
func BenchmarkMetricsEnabled(b *testing.B) {
	benchTracing(b, &sim.ObsConfig{MetricsInterval: 1000})
}

// BenchmarkAblations regenerates the design-choice sensitivity sweeps
// (write-latency inflection, WB window, hold cap, interface depth).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		wl, err := exp.AblationWriteLatency(r)
		must(b, err)
		exp.PrintWriteLatency(io.Discard, wl)
		pts, err := exp.AblationWBWindow(r)
		must(b, err)
		exp.PrintAblation(io.Discard, "wb window", pts)
	}
}

// BenchmarkTraceRecordReplay measures the trace substrate's record+load+
// replay cost for one core's stream.
func BenchmarkTraceRecordReplay(b *testing.B) {
	prof := workload.MustByName("tpcc")
	for i := 0; i < b.N; i++ {
		gen := workload.NewGenerator(prof, 0, workload.ModeShared, uint64(i+1))
		var buf bytes.Buffer
		must(b, trace.Record(gen, 100000, &buf, trace.Meta{Name: "tpcc"}))
		tr, err := trace.Load(&buf)
		must(b, err)
		p := trace.NewPlayer(tr)
		for j := 0; j < 100000; j++ {
			p.Next()
		}
	}
}
