module sttsim

go 1.22
